#include "moo/dag_aggregation.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "analysis/invariants.h"
#include "common/check.h"

namespace sparkopt {

int DagAggregator::AcquireNode() {
  if (!free_.empty()) {
    const int idx = free_.back();
    free_.pop_back();
    nodes_[idx].in_use = true;
    return idx;
  }
  nodes_.emplace_back();  // warm-up only: pool size peaks at tree depth
  nodes_.back().in_use = true;
  return static_cast<int>(nodes_.size()) - 1;
}

void DagAggregator::ReleaseNode(int idx) {
  Node& n = nodes_[idx];
  // clear() keeps the vector capacities — the recycled node serves the
  // next acquisition without reallocating.
  n.f2.clear();
  n.f3.clear();
  n.choice = nullptr;
  n.width = 0;
  n.in_use = false;
  free_.push_back(idx);
}

int DagAggregator::Leaf(const std::vector<SubQEntry>& set, int k) {
  const int idx = AcquireNode();
  Node& node = nodes_[idx];
  node.width = 1;
  int* rows = arena_.AllocArray<int>(set.size());
  // Only the subQ-level Pareto entries can contribute (Prop. 5.1);
  // entries were already filtered, so take them all.
  if (k == 3) {
    node.f3.reserve(set.size());
    for (size_t j = 0; j < set.size(); ++j) {
      node.f3.Append(set[j].f[0], set[j].f[1], set[j].f[2], j);
      rows[j] = set[j].pool_idx;
    }
  } else {
    node.f2.reserve(set.size());
    for (size_t j = 0; j < set.size(); ++j) {
      node.f2.Append(set[j].f[0], set[j].f[1], j);
      rows[j] = set[j].pool_idx;
    }
  }
  node.choice = rows;
  return idx;
}

int DagAggregator::Merge(int a, int b, int k) {
  // Acquire before taking references: the pool vector may grow here.
  const int idx = AcquireNode();
  Node& out = nodes_[idx];
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  out.width = na.width + nb.width;
  if (k == 3) {
    FlatMerge3(na.f3, nb.f3, &out.f3, &scratch_);
  } else {
    FlatMerge2(na.f2, nb.f2, &out.f2, &scratch_);
  }
  const size_t n = NodePoints(out, k);
  int* rows = arena_.AllocArray<int>(n * static_cast<size_t>(out.width));
  int* w = rows;
  for (const MergePair& pair : scratch_.pairs) {
    const int* ra = na.choice + static_cast<size_t>(pair.i) * na.width;
    const int* rb = nb.choice + static_cast<size_t>(pair.j) * nb.width;
    w = std::copy(ra, ra + na.width, w);
    w = std::copy(rb, rb + nb.width, w);
  }
  out.choice = rows;
#ifdef SPARKOPT_VERIFY
  // Every Minkowski-sum merge must hand a mutually non-dominated front to
  // its parent (Algorithm 3 / Proposition B.1).
  std::vector<ObjectiveVector> verify_front;
  verify_front.reserve(n);
  for (size_t p = 0; p < n; ++p) {
    if (k == 3) {
      verify_front.push_back({out.f3.x[p], out.f3.y[p], out.f3.z[p]});
    } else {
      verify_front.push_back({out.f2.x[p], out.f2.y[p]});
    }
  }
  SPARKOPT_VERIFY_FRONT(verify_front, "DagAggregator::Merge");
#endif
  ReleaseNode(a);
  ReleaseNode(b);
  return idx;
}

// Thins a front to at most `cap` points, keeping the extremes and evenly
// spaced interior points along the lexicographically sorted order (ties
// broken by the remaining axes, then position, for determinism). Exact
// divide-and-conquer merging can otherwise grow multiplicatively with
// the number of subQs (the "total complexity could be high" caveat in
// Appendix B.2).
void DagAggregator::Thin(int node_idx, int k, size_t cap) {
  Node& node = nodes_[node_idx];
  const size_t n = NodePoints(node, k);
  if (n <= cap || cap < 2) return;
  auto& order = scratch_.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  if (k == 3) {
    const double* x = node.f3.x.data();
    const double* y = node.f3.y.data();
    const double* z = node.f3.z.data();
    std::sort(order.begin(), order.end(), [&](uint32_t p, uint32_t q) {
      if (x[p] != x[q]) return x[p] < x[q];
      if (y[p] != y[q]) return y[p] < y[q];
      if (z[p] != z[q]) return z[p] < z[q];
      return p < q;
    });
  } else {
    const double* x = node.f2.x.data();
    const double* y = node.f2.y.data();
    std::sort(order.begin(), order.end(), [&](uint32_t p, uint32_t q) {
      if (x[p] != x[q]) return x[p] < x[q];
      if (y[p] != y[q]) return y[p] < y[q];
      return p < q;
    });
  }
  const int w = node.width;
  int* rows = arena_.AllocArray<int>(cap * static_cast<size_t>(w));
  tmp2_.clear();
  tmp3_.clear();
  for (size_t i = 0; i < cap; ++i) {
    const uint32_t src = order[i * (n - 1) / (cap - 1)];
    if (k == 3) {
      tmp3_.Append(node.f3.x[src], node.f3.y[src], node.f3.z[src],
                   tmp3_.size());
    } else {
      tmp2_.Append(node.f2.x[src], node.f2.y[src], tmp2_.size());
    }
    const int* row = node.choice + static_cast<size_t>(src) * w;
    std::copy(row, row + w, rows + i * static_cast<size_t>(w));
  }
  // O(1) buffer swaps: the node takes the thinned front, tmp keeps the
  // (cleared next call) old buffers at their high-water capacity.
  if (k == 3) {
    std::swap(node.f3, tmp3_);
  } else {
    std::swap(node.f2, tmp2_);
  }
  node.choice = rows;
}

// Optional epsilon-dominance budget (k = 2 only): shrinks the front on
// the epsilon grid and compacts the choice rows through the surviving
// payloads. No-op at eps <= 0, keeping the default path bitwise exact.
void DagAggregator::EpsilonThinNode(int node_idx, double eps) {
  Node& node = nodes_[node_idx];
  const size_t n = node.f2.size();
  EpsilonThin2(&node.f2, eps, &scratch_);
  if (node.f2.size() == n) return;
  const int w = node.width;
  int* rows = arena_.AllocArray<int>(node.f2.size() * static_cast<size_t>(w));
  for (size_t p = 0; p < node.f2.size(); ++p) {
    const int* row =
        node.choice + node.f2.payload[p] * static_cast<size_t>(w);
    std::copy(row, row + w, rows + p * static_cast<size_t>(w));
    node.f2.payload[p] = p;
  }
  node.choice = rows;
}

int DagAggregator::Recurse(const std::vector<std::vector<SubQEntry>>& sets,
                           int lo, int hi, int k, size_t cap, double eps) {
  if (lo == hi) return Leaf(sets[lo], k);
  const int mid = (lo + hi) / 2;
  const int left = Recurse(sets, lo, mid, k, cap, eps);
  const int right = Recurse(sets, mid + 1, hi, k, cap, eps);
  const int merged = Merge(left, right, k);
  if (eps > 0.0 && k == 2) EpsilonThinNode(merged, eps);
  Thin(merged, k, cap);
  return merged;
}

void DagAggregator::AggregateDc(
    const std::vector<std::vector<SubQEntry>>& sets, int k, size_t cap,
    double eps, AggregatedBatch* out) {
  SPARKOPT_CHECK(k == 2 || k == 3) << "DagAggregator supports k in {2, 3}";
  const int m = static_cast<int>(sets.size());
  out->clear();
  out->k = k;
  out->width = m;
  for (const auto& s : sets) {
    if (s.empty()) return;
  }
  arena_.Reset();
  const int root = Recurse(sets, 0, m - 1, k, cap, eps);
  Node& r = nodes_[root];
  const size_t n = NodePoints(r, k);
  out->obj.reserve(n * static_cast<size_t>(k));
  out->choice.reserve(n * static_cast<size_t>(m));
  for (size_t p = 0; p < n; ++p) {
    if (k == 3) {
      out->obj.push_back(r.f3.x[p]);
      out->obj.push_back(r.f3.y[p]);
      out->obj.push_back(r.f3.z[p]);
    } else {
      out->obj.push_back(r.f2.x[p]);
      out->obj.push_back(r.f2.y[p]);
    }
    const int* row = r.choice + p * static_cast<size_t>(m);
    out->choice.insert(out->choice.end(), row, row + m);
  }
  ReleaseNode(root);
}

void DagAggregator::AggregateWeightedSum(
    const std::vector<std::vector<SubQEntry>>& sets, int k, int ws_pairs,
    bool normalize, AggregatedBatch* out) {
  SPARKOPT_CHECK(k == 2 || k == 3) << "DagAggregator supports k in {2, 3}";
  const int m = static_cast<int>(sets.size());
  out->clear();
  out->k = k;
  out->width = m;
  for (const auto& s : sets) {
    if (s.empty()) return;
  }
  arena_.Reset();
  // Per-subQ min-max normalization (normalize_per_subQ in Algorithm 4).
  // With `normalize` off the raw weighted sum is used, which makes every
  // returned point exactly query-level Pareto optimal (Lemma 1).
  double* lo = arena_.AllocArray<double>(static_cast<size_t>(m) * k);
  double* hi = arena_.AllocArray<double>(static_cast<size_t>(m) * k);
  for (int i = 0; i < m; ++i) {
    for (int d = 0; d < k; ++d) {
      lo[i * k + d] = normalize ? 1e300 : 0.0;
      hi[i * k + d] = normalize ? -1e300 : 1.0;
    }
    if (normalize) {
      for (const auto& e : sets[i]) {
        for (int d = 0; d < k; ++d) {
          lo[i * k + d] = std::min(lo[i * k + d], e.f[d]);
          hi[i * k + d] = std::max(hi[i * k + d], e.f[d]);
        }
      }
    }
  }
  // Weight ladder. k = 2: w_latency = w / (ws_pairs - 1) as in Algorithm
  // 4; k = 3: the smallest simplex lattice {(a, b, t-a-b) / t} with at
  // least ws_pairs points, enumerated in (a, b) lexicographic order.
  size_t n_weights = static_cast<size_t>(std::max(ws_pairs, 0));
  int t = 1;
  if (k == 3 && ws_pairs > 0) {
    while ((t + 1) * (t + 2) / 2 < ws_pairs) ++t;
    n_weights = static_cast<size_t>((t + 1) * (t + 2) / 2);
  }
  double* w = arena_.AllocArray<double>(n_weights * k);
  if (k == 3 && n_weights > 0) {
    size_t row = 0;
    for (int a = 0; a <= t; ++a) {
      for (int b = 0; b <= t - a; ++b, ++row) {
        w[row * 3 + 0] = static_cast<double>(a) / t;
        w[row * 3 + 1] = static_cast<double>(b) / t;
        w[row * 3 + 2] = static_cast<double>(t - a - b) / t;
      }
    }
  } else {
    for (size_t row = 0; row < n_weights; ++row) {
      const double wl = n_weights == 1
                            ? 0.5
                            : static_cast<double>(row) / (n_weights - 1);
      w[row * 2 + 0] = wl;
      w[row * 2 + 1] = 1.0 - wl;
    }
  }

  out->obj.reserve(n_weights * k);
  out->choice.reserve(n_weights * static_cast<size_t>(m));
  for (size_t row = 0; row < n_weights; ++row) {
    const size_t base = out->obj.size();
    for (int d = 0; d < k; ++d) out->obj.push_back(0.0);
    for (int i = 0; i < m; ++i) {
      double best_v = std::numeric_limits<double>::infinity();
      size_t best = 0;
      for (size_t j = 0; j < sets[i].size(); ++j) {
        const auto& f = sets[i][j].f;
        double v = 0.0;
        for (int d = 0; d < k; ++d) {
          const double range = hi[i * k + d] - lo[i * k + d];
          const double nd =
              range > 0 ? (f[d] - lo[i * k + d]) / range : 0.0;
          v += w[row * k + d] * nd;
        }
        if (v < best_v) {
          best_v = v;
          best = j;
        }
      }
      for (int d = 0; d < k; ++d) {
        out->obj[base + d] += sets[i][best].f[d];
      }
      out->choice.push_back(sets[i][best].pool_idx);
    }
  }
}

void DagAggregator::AggregateBoundary(
    const std::vector<std::vector<SubQEntry>>& sets, int k,
    AggregatedBatch* out) {
  SPARKOPT_CHECK(k == 2 || k == 3) << "DagAggregator supports k in {2, 3}";
  const int m = static_cast<int>(sets.size());
  out->clear();
  out->k = k;
  out->width = m;
  for (const auto& s : sets) {
    if (s.empty()) return;
  }
  out->obj.reserve(static_cast<size_t>(k) * k);
  out->choice.reserve(static_cast<size_t>(k) * m);
  for (int obj = 0; obj < k; ++obj) {
    const size_t base = out->obj.size();
    for (int d = 0; d < k; ++d) out->obj.push_back(0.0);
    for (int i = 0; i < m; ++i) {
      size_t best = 0;
      for (size_t j = 1; j < sets[i].size(); ++j) {
        if (sets[i][j].f[obj] < sets[i][best].f[obj]) best = j;
      }
      for (int d = 0; d < k; ++d) {
        out->obj[base + d] += sets[i][best].f[d];
      }
      out->choice.push_back(sets[i][best].pool_idx);
    }
  }
}

}  // namespace sparkopt
