#include "moo/hmooc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "moo/dag_aggregation.h"
#include "moo/kmeans.h"
#include "moo/objective_models.h"
#include "obs/trace.h"
#include "params/sampler.h"

namespace sparkopt {

const char* DagAggregationName(DagAggregation a) {
  switch (a) {
    case DagAggregation::kDivideAndConquer: return "HMOOC1";
    case DagAggregation::kWeightedSum: return "HMOOC2";
    case DagAggregation::kBoundary: return "HMOOC3";
  }
  return "?";
}

namespace {

std::vector<double> MakeConf(const std::vector<double>& theta_c,
                             const std::vector<double>& theta_ps) {
  static const std::vector<double> kDefault = DefaultSparkConfig();
  std::vector<double> conf = kDefault;
  for (size_t i = 0; i < theta_c.size() && i < 8; ++i) conf[i] = theta_c[i];
  for (size_t i = 0; i < theta_ps.size() && i < 11; ++i) {
    conf[8 + i] = theta_ps[i];
  }
  return conf;
}

}  // namespace

MooRunResult HmoocSolver::Solve() const {
  obs::Span span("hmooc.solve");
  const auto t0 = std::chrono::steady_clock::now();
  const size_t evals_before = model_->eval_count();
  Rng rng(opts_.seed);
  const int m = model_->num_subqs();
  const int nk = model_->num_objectives();
  SPARKOPT_CHECK(nk == 2 || nk == 3)
      << "HmoocSolver supports 2 or 3 objectives, got " << nk;
  span.Arg("subqs", m);
  span.Arg("objectives", nk);
  // Multi-fidelity screening: route batched evaluations through the
  // tiered wrapper. kOff (the default) and unusable screen configs take
  // the raw model, keeping the single-fidelity path bitwise intact.
  std::unique_ptr<ScreeningSubQModel> screening;
  const SubQObjectiveModel* model = model_;
  if (opts_.fidelity.mode != FidelityMode::kOff) {
    screening =
        std::make_unique<ScreeningSubQModel>(model_, opts_.fidelity);
    if (screening->usable()) {
      model = screening.get();
    } else {
      screening.reset();
    }
  }
  // Worker pool for the independent fan-outs below. All RNG draws happen
  // on this thread before each parallel region; workers only fill
  // index-addressed slots, so results are bitwise identical at any
  // thread count. Workers must not record obs::Span (main-thread-only).
  ThreadPool workers(opts_.num_threads);
  span.Arg("threads", workers.parallelism());

  const auto& space = SparkParamSpace();
  const ParamSpace c_space = space.Subspace(ParamCategory::kContext);
  // theta_p and theta_s are sampled jointly (11 dims).
  std::vector<ParamSpec> ps_specs;
  for (const auto& s : space.specs()) {
    if (s.category != ParamCategory::kContext) ps_specs.push_back(s);
  }
  const ParamSpace ps_space(std::move(ps_specs));

  // ---- Step 1: theta_c candidates ---------------------------------------
  obs::Span sample_span("hmooc.sample_theta_c");
  std::vector<std::vector<double>> theta_c;
  if (opts_.grid_init) {
    theta_c = SampleGrid(c_space, 2,
                         static_cast<size_t>(opts_.theta_c_samples));
    // Grid init is complemented by random sampling (Section 5.1.1).
    auto extra = SampleUniform(
        c_space,
        std::max(0, opts_.theta_c_samples -
                        static_cast<int>(theta_c.size())),
        &rng, opts_.search_margin);
    theta_c.insert(theta_c.end(), extra.begin(), extra.end());
  } else {
    theta_c = SampleLatinHypercube(
        c_space, static_cast<size_t>(opts_.theta_c_samples), &rng,
        opts_.search_margin);
  }

  sample_span.Arg("candidates", static_cast<double>(theta_c.size()));
  sample_span.End();

  // ---- Step 2: cluster theta_c ------------------------------------------
  obs::Span cluster_span("hmooc.cluster_theta_c");
  std::vector<std::vector<double>> c_unit;
  c_unit.reserve(theta_c.size());
  for (const auto& c : theta_c) c_unit.push_back(c_space.Normalize(c));
  const KMeansResult km = KMeans(c_unit, opts_.clusters, 20,
                                 HashCombine(opts_.seed, 0xC1));
  const int n_clusters = static_cast<int>(km.centroids.size());
  cluster_span.Arg("clusters", n_clusters);
  cluster_span.End();
  obs::Count("hmooc.clusters", static_cast<uint64_t>(n_clusters));

  // ---- Step 3: theta_p MOO per representative ---------------------------
  obs::Span subq_span("hmooc.subq_solve");
  const auto pool = SampleLatinHypercube(
      ps_space, static_cast<size_t>(opts_.theta_p_samples), &rng,
      opts_.search_margin);
  // opt_pool[r][i] = pool indices Pareto-optimal for subQ i under rep r.
  // Each (representative, subQ) pair is independent: one batched model
  // call over the whole theta_p pool, fanned out across the workers.
  std::vector<std::vector<std::vector<int>>> opt_pool(
      n_clusters, std::vector<std::vector<int>>(m));
  workers.ParallelFor(
      static_cast<size_t>(n_clusters) * m, [&](size_t task) {
        const int r = static_cast<int>(task / m);
        const int i = static_cast<int>(task % m);
        const auto& rep_c = theta_c[km.representative[r]];
        std::vector<std::vector<double>> confs;
        confs.reserve(pool.size());
        for (const auto& ps : pool) confs.push_back(MakeConf(rep_c, ps));
        std::vector<ObjectiveVector> fs;
        obs::Observe("hmooc.subq_batch_rows",
                     static_cast<double>(confs.size()));
        model->EvaluateBatch(i, confs, &fs);
        for (size_t j : ParetoIndices(fs)) {
          opt_pool[r][i].push_back(static_cast<int>(j));
        }
      });

  // ---- Step 4 + 5: assign optimal theta_p to members; enrich theta_c ----
  // Every (member, subQ) cell is independent: slots are pre-sized and
  // written by index, one batched model call per cell.
  auto evaluate_members =
      [&](const std::vector<std::vector<double>>& members,
          const std::vector<int>& member_cluster, EffectiveSet* eff) {
        const size_t base = eff->size();
        eff->resize(base + members.size());
        for (size_t c = 0; c < members.size(); ++c) {
          (*eff)[base + c].resize(m);
        }
        workers.ParallelFor(members.size() * m, [&](size_t task) {
          const size_t c = task / m;
          const int i = static_cast<int>(task % m);
          const int r = member_cluster[c];
          std::vector<std::vector<double>> confs;
          confs.reserve(opt_pool[r][i].size());
          for (int j : opt_pool[r][i]) {
            confs.push_back(MakeConf(members[c], pool[j]));
          }
          std::vector<ObjectiveVector> fs;
          obs::Observe("hmooc.subq_batch_rows",
                       static_cast<double>(confs.size()));
          model->EvaluateBatch(i, confs, &fs);
          auto& subq_set = (*eff)[base + c][i];
          // Keep only the member-level Pareto entries (Prop. 5.1).
          for (size_t idx : ParetoIndices(fs)) {
            SubQEntry e;
            e.pool_idx = opt_pool[r][i][idx];
            for (int d = 0; d < nk; ++d) e.f[d] = fs[idx][d];
            subq_set.push_back(e);
          }
#ifdef SPARKOPT_VERIFY
          std::vector<ObjectiveVector> subq_front;
          subq_front.reserve(subq_set.size());
          for (const auto& e : subq_set) {
            subq_front.push_back(ObjectiveVector(e.f, e.f + nk));
          }
          SPARKOPT_VERIFY_FRONT(subq_front,
                                "HmoocSolver::Solve (subQ effective set)");
#endif
        });
      };

  EffectiveSet eff;
  std::vector<std::vector<double>> all_theta_c = theta_c;
  evaluate_members(theta_c, km.assignment, &eff);
  subq_span.Arg("evaluations",
                static_cast<double>(model_->eval_count() - evals_before));
  subq_span.End();

  obs::Span enrich_span("hmooc.enrich_theta_c");
  if (opts_.enriched_samples > 0 && theta_c.size() >= 2) {
    // theta_c crossover (Appendix C.1): one-point Cartesian recombination
    // of existing candidates.
    std::vector<std::vector<double>> enriched;
    std::vector<std::vector<double>> enriched_unit;
    while (static_cast<int>(enriched.size()) < opts_.enriched_samples) {
      const size_t a = rng.NextBounded(theta_c.size());
      size_t b = rng.NextBounded(theta_c.size());
      if (a == b) b = (b + 1) % theta_c.size();
      const size_t cut = 1 + rng.NextBounded(c_space.size() - 1);
      auto [c1, c2] = CrossoverOnePoint(theta_c[a], theta_c[b], cut);
      enriched.push_back(std::move(c1));
      if (static_cast<int>(enriched.size()) < opts_.enriched_samples) {
        enriched.push_back(std::move(c2));
      }
    }
    for (const auto& c : enriched) {
      enriched_unit.push_back(c_space.Normalize(c));
    }
    const auto clusters = AssignToCentroids(enriched_unit, km.centroids);
    evaluate_members(enriched, clusters, &eff);
    all_theta_c.insert(all_theta_c.end(), enriched.begin(), enriched.end());
  }

  enrich_span.End();

  // ---- Step 6: DAG aggregation -------------------------------------------
  obs::Span merge_span("hmooc.dag_merge");
  // Aggregate each theta_c candidate independently, then concatenate in
  // candidate order so the point sequence matches the sequential path.
  // One DagAggregator per worker thread: its arena, kernel scratch, and
  // node pool reach a steady state after the first few candidates.
  std::vector<AggregatedBatch> per_cand(eff.size());
  workers.ParallelFor(eff.size(), [&](size_t c) {
    thread_local DagAggregator aggregator;
    switch (opts_.aggregation) {
      case DagAggregation::kBoundary:
        aggregator.AggregateBoundary(eff[c], nk, &per_cand[c]);
        break;
      case DagAggregation::kWeightedSum:
        aggregator.AggregateWeightedSum(eff[c], nk, opts_.ws_pairs,
                                        opts_.hmooc2_normalize_per_subq,
                                        &per_cand[c]);
        break;
      case DagAggregation::kDivideAndConquer:
        aggregator.AggregateDc(
            eff[c], nk, static_cast<size_t>(std::max(opts_.dc_front_cap, 0)),
            opts_.dc_epsilon, &per_cand[c]);
        break;
    }
  });
  size_t total_points = 0;
  for (const auto& batch : per_cand) total_points += batch.size();

  merge_span.Arg("candidates", static_cast<double>(eff.size()));
  merge_span.Arg("points", static_cast<double>(total_points));
  merge_span.End();
  obs::Count("hmooc.aggregated_points", total_points);

  // ---- Step 7: query-level Pareto filter + solution assembly -----------
  obs::Span filter_span("hmooc.pareto_filter");
  std::vector<ObjectiveVector> fs;
  std::vector<int> point_cand;          // candidate of fs[p]
  std::vector<const int*> point_choice;  // choice row of fs[p]
  fs.reserve(total_points);
  point_cand.reserve(total_points);
  point_choice.reserve(total_points);
  for (size_t c = 0; c < per_cand.size(); ++c) {
    const AggregatedBatch& batch = per_cand[c];
    for (size_t p = 0; p < batch.size(); ++p) {
      fs.push_back(ObjectiveVector(batch.obj.begin() + p * nk,
                                   batch.obj.begin() + (p + 1) * nk));
      point_cand.push_back(static_cast<int>(c));
      point_choice.push_back(batch.choice.data() +
                             p * static_cast<size_t>(batch.width));
    }
  }

  MooRunResult result;
  // Deduplicate coincident points (e.g. a candidate whose two extreme
  // points collapse onto the same solution).
  std::vector<std::pair<ObjectiveVector, int>> seen;
  for (size_t idx : ParetoIndices(fs)) {
    const std::pair<ObjectiveVector, int> key = {fs[idx], point_cand[idx]};
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    MooSolution sol;
    sol.objectives = fs[idx];
    sol.per_subq_conf.reserve(m);
    for (int i = 0; i < m; ++i) {
      sol.per_subq_conf.push_back(
          MakeConf(all_theta_c[point_cand[idx]], pool[point_choice[idx][i]]));
    }
    sol.conf = sol.per_subq_conf.front();
    result.pareto.push_back(std::move(sol));
  }
#ifdef SPARKOPT_VERIFY
  std::vector<ObjectiveVector> final_front;
  final_front.reserve(result.pareto.size());
  for (const auto& sol : result.pareto) final_front.push_back(sol.objectives);
  SPARKOPT_VERIFY_FRONT(final_front, "HmoocSolver::Solve (query front)");
#endif
  filter_span.End();
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.evaluations = model_->eval_count() - evals_before;
  obs::Count("hmooc.solves");
  obs::Count("hmooc.model_evals", result.evaluations);
  obs::Count("hmooc.pareto_points", result.pareto.size());
  // Eval-cache saturation gauges: published once per solve so OpenMetrics
  // exports show occupancy / hit-rate / drop-rate, not only bench lines.
  if (const SubQEvaluator* se = model_->screen_evaluator()) {
    se->PublishCacheGauges();
  }
  if (screening) {
    span.Arg("mf_tier0_evals",
             static_cast<double>(screening->tier0_evals()));
    span.Arg("mf_tier1_evals",
             static_cast<double>(screening->tier1_evals()));
    span.Arg("mf_batches",
             static_cast<double>(screening->screened_batches()));
  }
  return result;
}

}  // namespace sparkopt
