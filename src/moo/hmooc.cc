#include "moo/hmooc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/pareto_flat.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "moo/kmeans.h"
#include "moo/objective_models.h"
#include "obs/trace.h"
#include "params/sampler.h"

namespace sparkopt {

const char* DagAggregationName(DagAggregation a) {
  switch (a) {
    case DagAggregation::kDivideAndConquer: return "HMOOC1";
    case DagAggregation::kWeightedSum: return "HMOOC2";
    case DagAggregation::kBoundary: return "HMOOC3";
  }
  return "?";
}

namespace {

// One subQ-level solution in a candidate's effective set.
struct SubQEntry {
  int pool_idx = -1;
  ObjectiveVector f;
};
// eff[c][i] = effective set of subQ i under theta_c candidate c.
using EffectiveSet = std::vector<std::vector<std::vector<SubQEntry>>>;

std::vector<double> MakeConf(const std::vector<double>& theta_c,
                             const std::vector<double>& theta_ps) {
  static const std::vector<double> kDefault = DefaultSparkConfig();
  std::vector<double> conf = kDefault;
  for (size_t i = 0; i < theta_c.size() && i < 8; ++i) conf[i] = theta_c[i];
  for (size_t i = 0; i < theta_ps.size() && i < 11; ++i) {
    conf[8 + i] = theta_ps[i];
  }
  return conf;
}

// Query-level point assembled from one entry per subQ.
struct AggregatedPoint {
  ObjectiveVector f;
  int candidate = -1;
  std::vector<int> pool_choice;  ///< per subQ: pool index
};

// ---- HMOOC3: boundary / extreme-point approximation --------------------
void AggregateBoundary(const EffectiveSet& eff, int candidate,
                       std::vector<AggregatedPoint>* out) {
  const auto& subq_sets = eff[candidate];
  const int m = static_cast<int>(subq_sets.size());
  const int k = 2;
  for (int obj = 0; obj < k; ++obj) {
    AggregatedPoint pt;
    pt.candidate = candidate;
    pt.f.assign(k, 0.0);
    pt.pool_choice.resize(m);
    for (int i = 0; i < m; ++i) {
      if (subq_sets[i].empty()) return;
      size_t best = 0;
      for (size_t j = 1; j < subq_sets[i].size(); ++j) {
        if (subq_sets[i][j].f[obj] < subq_sets[i][best].f[obj]) best = j;
      }
      for (int d = 0; d < k; ++d) pt.f[d] += subq_sets[i][best].f[d];
      pt.pool_choice[i] = subq_sets[i][best].pool_idx;
    }
    out->push_back(std::move(pt));
  }
}

// ---- HMOOC2: weighted-sum approximation (Algorithm 4) -------------------
void AggregateWeightedSum(const EffectiveSet& eff, int candidate,
                          int ws_pairs, bool normalize,
                          std::vector<AggregatedPoint>* out) {
  const auto& subq_sets = eff[candidate];
  const int m = static_cast<int>(subq_sets.size());
  // Per-subQ min-max normalization (normalize_per_subQ in Algorithm 4).
  // With `normalize` off the raw weighted sum is used, which makes every
  // returned point exactly query-level Pareto optimal (Lemma 1).
  std::vector<ObjectiveVector> lo(m, {0.0, 0.0});
  std::vector<ObjectiveVector> hi(m, {1.0, 1.0});
  if (normalize) {
    lo.assign(m, {1e300, 1e300});
    hi.assign(m, {-1e300, -1e300});
    for (int i = 0; i < m; ++i) {
      if (subq_sets[i].empty()) return;
      for (const auto& e : subq_sets[i]) {
        for (int d = 0; d < 2; ++d) {
          lo[i][d] = std::min(lo[i][d], e.f[d]);
          hi[i][d] = std::max(hi[i][d], e.f[d]);
        }
      }
    }
  } else {
    for (int i = 0; i < m; ++i) {
      if (subq_sets[i].empty()) return;
    }
  }
  for (int w = 0; w < ws_pairs; ++w) {
    const double wl =
        ws_pairs == 1 ? 0.5 : static_cast<double>(w) / (ws_pairs - 1);
    const double wc = 1.0 - wl;
    AggregatedPoint pt;
    pt.candidate = candidate;
    pt.f.assign(2, 0.0);
    pt.pool_choice.resize(m);
    for (int i = 0; i < m; ++i) {
      double best_v = std::numeric_limits<double>::infinity();
      size_t best = 0;
      for (size_t j = 0; j < subq_sets[i].size(); ++j) {
        const auto& f = subq_sets[i][j].f;
        const double n0 =
            hi[i][0] > lo[i][0] ? (f[0] - lo[i][0]) / (hi[i][0] - lo[i][0])
                                : 0.0;
        const double n1 =
            hi[i][1] > lo[i][1] ? (f[1] - lo[i][1]) / (hi[i][1] - lo[i][1])
                                : 0.0;
        const double v = wl * n0 + wc * n1;
        if (v < best_v) {
          best_v = v;
          best = j;
        }
      }
      pt.f[0] += subq_sets[i][best].f[0];
      pt.f[1] += subq_sets[i][best].f[1];
      pt.pool_choice[i] = subq_sets[i][best].pool_idx;
    }
    out->push_back(std::move(pt));
  }
}

// ---- HMOOC1: exact divide-and-conquer (Algorithms 2 & 3) ----------------
//
// The divide-and-conquer tree runs entirely on the flat kernel
// (pareto_flat.h): each node keeps its front in SoA layout and its
// choice vectors as flat rows of `width` pool indices, so a merge is one
// output-sensitive FlatMerge2 plus row concatenations — no per-point
// ObjectiveVector or choice-vector allocations, and never the |a| x |b|
// cross product.
struct DcNode {
  Front2 front;             ///< point p at (front.x[p], front.y[p])
  std::vector<int> choice;  ///< row p = choice[p*width .. p*width+width)
  int width = 0;            ///< subQs covered: choice-row length
};

// Thins a front to at most `cap` points, keeping the extremes and evenly
// spaced interior points along the f0-sorted order (ties broken by f1,
// then position, for determinism). Exact divide-and-conquer merging can
// otherwise grow multiplicatively with the number of subQs (the "total
// complexity could be high" caveat in Appendix B.2).
void ThinFront(DcNode* node, size_t cap, ParetoScratch* scratch) {
  const size_t n = node->front.size();
  if (n <= cap || cap < 2) return;
  auto& order = scratch->order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  const double* x = node->front.x.data();
  const double* y = node->front.y.data();
  std::sort(order.begin(), order.end(), [&](uint32_t p, uint32_t q) {
    if (x[p] != x[q]) return x[p] < x[q];
    if (y[p] != y[q]) return y[p] < y[q];
    return p < q;
  });
  const int w = node->width;
  DcNode thinned;
  thinned.width = w;
  thinned.front.reserve(cap);
  thinned.choice.reserve(cap * w);
  for (size_t i = 0; i < cap; ++i) {
    const uint32_t src = order[i * (n - 1) / (cap - 1)];
    thinned.front.Append(node->front.x[src], node->front.y[src],
                         thinned.front.size());
    const int* row = node->choice.data() + static_cast<size_t>(src) * w;
    thinned.choice.insert(thinned.choice.end(), row, row + w);
  }
  *node = std::move(thinned);
}

// Optional epsilon-dominance budget: shrinks the front on the epsilon
// grid and compacts the choice rows through the surviving payloads.
// No-op at eps <= 0, keeping the default path bitwise exact.
void EpsilonThinDc(DcNode* node, double eps, ParetoScratch* scratch) {
  const size_t n = node->front.size();
  EpsilonThin2(&node->front, eps, scratch);
  if (node->front.size() == n) return;
  const int w = node->width;
  std::vector<int> compact;
  compact.reserve(node->front.size() * w);
  for (size_t p = 0; p < node->front.size(); ++p) {
    const int* row =
        node->choice.data() + node->front.payload[p] * static_cast<size_t>(w);
    compact.insert(compact.end(), row, row + w);
    node->front.payload[p] = p;
  }
  node->choice = std::move(compact);
}

DcNode MergeDc(const DcNode& a, const DcNode& b, ParetoScratch* scratch) {
  DcNode out;
  out.width = a.width + b.width;
  FlatMerge2(a.front, b.front, &out.front, scratch);
  out.choice.reserve(out.front.size() * static_cast<size_t>(out.width));
  for (const MergePair& pair : scratch->pairs) {
    const int* ra = a.choice.data() + static_cast<size_t>(pair.i) * a.width;
    const int* rb = b.choice.data() + static_cast<size_t>(pair.j) * b.width;
    out.choice.insert(out.choice.end(), ra, ra + a.width);
    out.choice.insert(out.choice.end(), rb, rb + b.width);
  }
#ifdef SPARKOPT_VERIFY
  // Every Minkowski-sum merge must hand a mutually non-dominated front to
  // its parent (Algorithm 3 / Proposition B.1).
  std::vector<ObjectiveVector> verify_front;
  verify_front.reserve(out.front.size());
  for (size_t p = 0; p < out.front.size(); ++p) {
    verify_front.push_back({out.front.x[p], out.front.y[p]});
  }
  SPARKOPT_VERIFY_FRONT(verify_front, "HmoocSolver::MergeDc");
#endif
  return out;
}

DcNode DivideAndConquer(const std::vector<std::vector<SubQEntry>>& sets,
                        int lo, int hi, size_t cap, double eps,
                        ParetoScratch* scratch) {
  if (lo == hi) {
    DcNode node;
    node.width = 1;
    node.front.reserve(sets[lo].size());
    node.choice.reserve(sets[lo].size());
    // Only the subQ-level Pareto entries can contribute (Prop. 5.1);
    // entries were already filtered, so take them all.
    for (const auto& e : sets[lo]) {
      node.front.Append(e.f[0], e.f[1], node.front.size());
      node.choice.push_back(e.pool_idx);
    }
    return node;
  }
  const int mid = (lo + hi) / 2;
  DcNode merged =
      MergeDc(DivideAndConquer(sets, lo, mid, cap, eps, scratch),
              DivideAndConquer(sets, mid + 1, hi, cap, eps, scratch),
              scratch);
  if (eps > 0.0) EpsilonThinDc(&merged, eps, scratch);
  ThinFront(&merged, cap, scratch);
  return merged;
}

void AggregateDivideAndConquer(const EffectiveSet& eff, int candidate,
                               size_t cap, double eps,
                               std::vector<AggregatedPoint>* out) {
  const auto& subq_sets = eff[candidate];
  const int m = static_cast<int>(subq_sets.size());
  for (const auto& s : subq_sets) {
    if (s.empty()) return;
  }
  // Per-thread kernel scratch: candidates fan out across the worker pool.
  thread_local ParetoScratch scratch;
  DcNode front = DivideAndConquer(subq_sets, 0, m - 1, cap, eps, &scratch);
  for (size_t p = 0; p < front.front.size(); ++p) {
    AggregatedPoint pt;
    pt.candidate = candidate;
    pt.f = {front.front.x[p], front.front.y[p]};
    const int* row = front.choice.data() + p * static_cast<size_t>(m);
    pt.pool_choice.assign(row, row + m);
    out->push_back(std::move(pt));
  }
}

}  // namespace

MooRunResult HmoocSolver::Solve() const {
  obs::Span span("hmooc.solve");
  const auto t0 = std::chrono::steady_clock::now();
  const size_t evals_before = model_->eval_count();
  Rng rng(opts_.seed);
  const int m = model_->num_subqs();
  span.Arg("subqs", m);
  // Multi-fidelity screening: route batched evaluations through the
  // tiered wrapper. kOff (the default) and unusable screen configs take
  // the raw model, keeping the single-fidelity path bitwise intact.
  std::unique_ptr<ScreeningSubQModel> screening;
  const SubQObjectiveModel* model = model_;
  if (opts_.fidelity.mode != FidelityMode::kOff) {
    screening =
        std::make_unique<ScreeningSubQModel>(model_, opts_.fidelity);
    if (screening->usable()) {
      model = screening.get();
    } else {
      screening.reset();
    }
  }
  // Worker pool for the independent fan-outs below. All RNG draws happen
  // on this thread before each parallel region; workers only fill
  // index-addressed slots, so results are bitwise identical at any
  // thread count. Workers must not record obs::Span (main-thread-only).
  ThreadPool workers(opts_.num_threads);
  span.Arg("threads", workers.parallelism());

  const auto& space = SparkParamSpace();
  const ParamSpace c_space = space.Subspace(ParamCategory::kContext);
  // theta_p and theta_s are sampled jointly (11 dims).
  std::vector<ParamSpec> ps_specs;
  for (const auto& s : space.specs()) {
    if (s.category != ParamCategory::kContext) ps_specs.push_back(s);
  }
  const ParamSpace ps_space(std::move(ps_specs));

  // ---- Step 1: theta_c candidates ---------------------------------------
  obs::Span sample_span("hmooc.sample_theta_c");
  std::vector<std::vector<double>> theta_c;
  if (opts_.grid_init) {
    theta_c = SampleGrid(c_space, 2,
                         static_cast<size_t>(opts_.theta_c_samples));
    // Grid init is complemented by random sampling (Section 5.1.1).
    auto extra = SampleUniform(
        c_space,
        std::max(0, opts_.theta_c_samples -
                        static_cast<int>(theta_c.size())),
        &rng, opts_.search_margin);
    theta_c.insert(theta_c.end(), extra.begin(), extra.end());
  } else {
    theta_c = SampleLatinHypercube(
        c_space, static_cast<size_t>(opts_.theta_c_samples), &rng,
        opts_.search_margin);
  }

  sample_span.Arg("candidates", static_cast<double>(theta_c.size()));
  sample_span.End();

  // ---- Step 2: cluster theta_c ------------------------------------------
  obs::Span cluster_span("hmooc.cluster_theta_c");
  std::vector<std::vector<double>> c_unit;
  c_unit.reserve(theta_c.size());
  for (const auto& c : theta_c) c_unit.push_back(c_space.Normalize(c));
  const KMeansResult km = KMeans(c_unit, opts_.clusters, 20,
                                 HashCombine(opts_.seed, 0xC1));
  const int n_clusters = static_cast<int>(km.centroids.size());
  cluster_span.Arg("clusters", n_clusters);
  cluster_span.End();
  obs::Count("hmooc.clusters", static_cast<uint64_t>(n_clusters));

  // ---- Step 3: theta_p MOO per representative ---------------------------
  obs::Span subq_span("hmooc.subq_solve");
  const auto pool = SampleLatinHypercube(
      ps_space, static_cast<size_t>(opts_.theta_p_samples), &rng,
      opts_.search_margin);
  // opt_pool[r][i] = pool indices Pareto-optimal for subQ i under rep r.
  // Each (representative, subQ) pair is independent: one batched model
  // call over the whole theta_p pool, fanned out across the workers.
  std::vector<std::vector<std::vector<int>>> opt_pool(
      n_clusters, std::vector<std::vector<int>>(m));
  workers.ParallelFor(
      static_cast<size_t>(n_clusters) * m, [&](size_t task) {
        const int r = static_cast<int>(task / m);
        const int i = static_cast<int>(task % m);
        const auto& rep_c = theta_c[km.representative[r]];
        std::vector<std::vector<double>> confs;
        confs.reserve(pool.size());
        for (const auto& ps : pool) confs.push_back(MakeConf(rep_c, ps));
        std::vector<ObjectiveVector> fs;
        obs::Observe("hmooc.subq_batch_rows",
                     static_cast<double>(confs.size()));
        model->EvaluateBatch(i, confs, &fs);
        for (size_t j : ParetoIndices(fs)) {
          opt_pool[r][i].push_back(static_cast<int>(j));
        }
      });

  // ---- Step 4 + 5: assign optimal theta_p to members; enrich theta_c ----
  // Every (member, subQ) cell is independent: slots are pre-sized and
  // written by index, one batched model call per cell.
  auto evaluate_members =
      [&](const std::vector<std::vector<double>>& members,
          const std::vector<int>& member_cluster, EffectiveSet* eff) {
        const size_t base = eff->size();
        eff->resize(base + members.size());
        for (size_t c = 0; c < members.size(); ++c) {
          (*eff)[base + c].resize(m);
        }
        workers.ParallelFor(members.size() * m, [&](size_t task) {
          const size_t c = task / m;
          const int i = static_cast<int>(task % m);
          const int r = member_cluster[c];
          std::vector<std::vector<double>> confs;
          confs.reserve(opt_pool[r][i].size());
          for (int j : opt_pool[r][i]) {
            confs.push_back(MakeConf(members[c], pool[j]));
          }
          std::vector<ObjectiveVector> fs;
          obs::Observe("hmooc.subq_batch_rows",
                       static_cast<double>(confs.size()));
          model->EvaluateBatch(i, confs, &fs);
          auto& subq_set = (*eff)[base + c][i];
          // Keep only the member-level Pareto entries (Prop. 5.1).
          for (size_t idx : ParetoIndices(fs)) {
            subq_set.push_back({opt_pool[r][i][idx], std::move(fs[idx])});
          }
#ifdef SPARKOPT_VERIFY
          std::vector<ObjectiveVector> subq_front;
          subq_front.reserve(subq_set.size());
          for (const auto& e : subq_set) subq_front.push_back(e.f);
          SPARKOPT_VERIFY_FRONT(subq_front,
                                "HmoocSolver::Solve (subQ effective set)");
#endif
        });
      };

  EffectiveSet eff;
  std::vector<std::vector<double>> all_theta_c = theta_c;
  evaluate_members(theta_c, km.assignment, &eff);
  subq_span.Arg("evaluations",
                static_cast<double>(model_->eval_count() - evals_before));
  subq_span.End();

  obs::Span enrich_span("hmooc.enrich_theta_c");
  if (opts_.enriched_samples > 0 && theta_c.size() >= 2) {
    // theta_c crossover (Appendix C.1): one-point Cartesian recombination
    // of existing candidates.
    std::vector<std::vector<double>> enriched;
    std::vector<std::vector<double>> enriched_unit;
    while (static_cast<int>(enriched.size()) < opts_.enriched_samples) {
      const size_t a = rng.NextBounded(theta_c.size());
      size_t b = rng.NextBounded(theta_c.size());
      if (a == b) b = (b + 1) % theta_c.size();
      const size_t cut = 1 + rng.NextBounded(c_space.size() - 1);
      auto [c1, c2] = CrossoverOnePoint(theta_c[a], theta_c[b], cut);
      enriched.push_back(std::move(c1));
      if (static_cast<int>(enriched.size()) < opts_.enriched_samples) {
        enriched.push_back(std::move(c2));
      }
    }
    for (const auto& c : enriched) {
      enriched_unit.push_back(c_space.Normalize(c));
    }
    const auto clusters = AssignToCentroids(enriched_unit, km.centroids);
    evaluate_members(enriched, clusters, &eff);
    all_theta_c.insert(all_theta_c.end(), enriched.begin(), enriched.end());
  }

  enrich_span.End();

  // ---- Step 6: DAG aggregation -------------------------------------------
  obs::Span merge_span("hmooc.dag_merge");
  // Aggregate each theta_c candidate independently, then concatenate in
  // candidate order so the point sequence matches the sequential path.
  std::vector<std::vector<AggregatedPoint>> per_cand(eff.size());
  workers.ParallelFor(eff.size(), [&](size_t c) {
    switch (opts_.aggregation) {
      case DagAggregation::kBoundary:
        AggregateBoundary(eff, static_cast<int>(c), &per_cand[c]);
        break;
      case DagAggregation::kWeightedSum:
        AggregateWeightedSum(eff, static_cast<int>(c), opts_.ws_pairs,
                             opts_.hmooc2_normalize_per_subq, &per_cand[c]);
        break;
      case DagAggregation::kDivideAndConquer:
        AggregateDivideAndConquer(
            eff, static_cast<int>(c),
            static_cast<size_t>(std::max(opts_.dc_front_cap, 0)),
            opts_.dc_epsilon, &per_cand[c]);
        break;
    }
  });
  std::vector<AggregatedPoint> points;
  for (auto& cand_points : per_cand) {
    for (auto& pt : cand_points) points.push_back(std::move(pt));
  }

  merge_span.Arg("candidates", static_cast<double>(eff.size()));
  merge_span.Arg("points", static_cast<double>(points.size()));
  merge_span.End();
  obs::Count("hmooc.aggregated_points", points.size());

  // ---- Step 7: query-level Pareto filter + solution assembly -----------
  obs::Span filter_span("hmooc.pareto_filter");
  std::vector<ObjectiveVector> fs;
  fs.reserve(points.size());
  for (const auto& p : points) fs.push_back(p.f);

  MooRunResult result;
  // Deduplicate coincident points (e.g. a candidate whose two extreme
  // points collapse onto the same solution).
  std::vector<std::pair<std::pair<double, double>, int>> seen;
  for (size_t idx : ParetoIndices(fs)) {
    const auto& p = points[idx];
    const std::pair<std::pair<double, double>, int> key = {
        {p.f[0], p.f[1]}, p.candidate};
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    MooSolution sol;
    sol.objectives = p.f;
    sol.per_subq_conf.reserve(m);
    for (int i = 0; i < m; ++i) {
      sol.per_subq_conf.push_back(
          MakeConf(all_theta_c[p.candidate], pool[p.pool_choice[i]]));
    }
    sol.conf = sol.per_subq_conf.front();
    result.pareto.push_back(std::move(sol));
  }
#ifdef SPARKOPT_VERIFY
  std::vector<ObjectiveVector> final_front;
  final_front.reserve(result.pareto.size());
  for (const auto& sol : result.pareto) final_front.push_back(sol.objectives);
  SPARKOPT_VERIFY_FRONT(final_front, "HmoocSolver::Solve (query front)");
#endif
  filter_span.End();
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.evaluations = model_->eval_count() - evals_before;
  obs::Count("hmooc.solves");
  obs::Count("hmooc.model_evals", result.evaluations);
  obs::Count("hmooc.pareto_points", result.pareto.size());
  if (screening) {
    span.Arg("mf_tier0_evals",
             static_cast<double>(screening->tier0_evals()));
    span.Arg("mf_tier1_evals",
             static_cast<double>(screening->tier1_evals()));
    span.Arg("mf_batches",
             static_cast<double>(screening->screened_batches()));
  }
  return result;
}

}  // namespace sparkopt
