#pragma once

#include <vector>

#include "common/pareto.h"
#include "params/spark_params.h"

/// \file problem.h
/// \brief Interfaces between the MOO algorithms and the objective models.
///
/// All solvers minimize k objectives: analytical latency (seconds) and
/// cloud cost (dollars) by default (k = 2), optionally plus IO volume
/// (gigabytes, k = 3) — see num_objectives() on each interface. Two
/// problem shapes exist:
///  - subQ-separable (HMOOC): objectives are evaluated per subQ and summed
///    (Definition 5.1); exposed by SubQObjectiveModel.
///  - monolithic (WS / Evo / PF baselines): a flat decision vector covers
///    theta_c plus one theta_p/theta_s copy per subQ (fine-grained) or a
///    single copy (query-level control); exposed by QueryObjectiveFn.

namespace sparkopt {

class SubQEvaluator;
class Regressor;

/// Tier-0 screen used by the multi-fidelity solve pipeline
/// (moo/objective_models.h; DESIGN.md section 13).
enum class FidelityMode {
  kOff = 0,    ///< single fidelity: every candidate pays the full model
  kAnalytic,   ///< screen with SubQEvaluator::EvaluateScreen (coarse cost)
  kDistilled   ///< screen with per-subQ distilled tiny regressors
};

/// \brief Knobs of the tiered (multi-fidelity) evaluation pipeline.
///
/// The default (kOff) is guaranteed to leave every solve path untouched —
/// bitwise-identical fronts to the single-fidelity solver. With a screen
/// enabled, each batch is first evaluated at tier 0; candidates within
/// `survival_margin` of the tier-0 Pareto front (dominance-aware ratio,
/// see SelectSurvivors2) escalate to the full tier-1 model, plus a
/// guaranteed-promotion floor so the tier-0 extremes and at least
/// max(min_promote, promote_frac * n) candidates always escalate. Final
/// fronts are built from tier-1 objectives only: screening can lose
/// quality, never fabricate points.
struct FidelityOptions {
  FidelityMode mode = FidelityMode::kOff;
  /// Survival band around the tier-0 front: candidate i survives when
  /// min over front points g of max(f_i0/g0, f_i1/g1) <= 1 + margin.
  double survival_margin = 0.15;
  /// Floor on promoted candidates per batch (absolute and fractional).
  int min_promote = 8;
  double promote_frac = 0.10;
  /// kDistilled only: tier-1-labeled training confs per subQ (used by
  /// TrainDistilledScreens; ignored at solve time).
  int distill_samples = 160;
  /// kDistilled only: one trained screen per subQ (size must equal
  /// num_subqs). Not owned; must outlive the solve.
  const std::vector<Regressor>* distilled = nullptr;
};

/// \brief Per-subQ objective evaluation phi(subQ_i; theta).
///
/// `conf` is a full 19-dim raw Spark configuration (theta_c + theta_p +
/// theta_s); implementations ignore the components that do not apply.
class SubQObjectiveModel {
 public:
  virtual ~SubQObjectiveModel() = default;

  virtual int num_subqs() const = 0;

  /// Number of objectives every Evaluate/EvaluateBatch vector carries.
  /// 2 = {latency, cost}; 3 adds IO gigabytes. Solvers size their fronts
  /// from this.
  virtual int num_objectives() const { return 2; }

  /// Returns {analytical latency (s), cost ($)[, IO (GB)]} of one subQ.
  ///
  /// Implementations must be safe to call concurrently from solver
  /// worker threads (the HMOOC fan-outs evaluate in parallel).
  virtual ObjectiveVector Evaluate(int subq,
                                   const std::vector<double>& conf) const = 0;

  /// \brief Evaluates one subQ under many configurations in one call
  /// (the solver hot path: one batch per (cluster, subQ) fan-out).
  ///
  /// `out` is resized to `confs.size()`; out[i] corresponds to confs[i]
  /// and is bitwise identical to Evaluate(subq, confs[i]). The default
  /// loops over Evaluate; learned models override with true batched
  /// inference.
  virtual void EvaluateBatch(int subq,
                             const std::vector<std::vector<double>>& confs,
                             std::vector<ObjectiveVector>* out) const;

  /// Number of model evaluations performed so far (for benchmarks).
  virtual size_t eval_count() const = 0;

  /// \brief The analytical evaluator backing this model, when one exists
  /// (both concrete models are built over a SubQEvaluator). Gives the
  /// multi-fidelity pipeline access to the cheap EvaluateScreen path;
  /// nullptr means FidelityMode::kAnalytic cannot be used with this
  /// model.
  virtual const SubQEvaluator* screen_evaluator() const { return nullptr; }

  /// Query-level objectives: sum over subQs with shared theta_c and
  /// per-subQ theta_p/theta_s (defaults to a loop over Evaluate).
  ObjectiveVector EvaluateQuery(
      const std::vector<double>& theta_c_conf,
      const std::vector<std::vector<double>>& per_subq_conf) const;
};

/// \brief Monolithic objective over a normalized decision vector in
/// [0,1]^dims. Used by the WS / Evo / PF baselines.
class QueryObjectiveFn {
 public:
  virtual ~QueryObjectiveFn() = default;
  virtual size_t dims() const = 0;
  /// Size of every Eval result (2 or 3; see SubQObjectiveModel).
  virtual size_t num_objectives() const { return 2; }
  virtual ObjectiveVector Eval(const std::vector<double>& x) const = 0;
};

/// One solution of the Spark tuning MOO problem.
struct MooSolution {
  ObjectiveVector objectives;             ///< {latency, cost[, io_gb]}
  std::vector<double> conf;               ///< full 19-dim (query-level view)
  /// Fine-grained assignment: full 19-dim configuration per subQ (all
  /// sharing the same theta_c block). Empty for query-level solutions.
  std::vector<std::vector<double>> per_subq_conf;
};

/// Result of one solver invocation.
struct MooRunResult {
  std::vector<MooSolution> pareto;  ///< non-dominated solutions
  double solve_seconds = 0.0;
  size_t evaluations = 0;

  /// WUN-recommended solution index for the given preference weights.
  size_t Recommend(const std::vector<double>& weights) const;
};

/// \brief Adapts a SubQObjectiveModel to the monolithic interface.
///
/// Layout of x (normalized): [theta_c (8)] ++ per tuned group
/// [theta_p (9) ++ theta_s (2)]. With `fine_grained` the group count is
/// num_subqs (dims = 8 + 11 m); otherwise one shared group (dims = 19).
class FlatProblem : public QueryObjectiveFn {
 public:
  FlatProblem(const SubQObjectiveModel* model, bool fine_grained);

  size_t dims() const override { return dims_; }
  size_t num_objectives() const override {
    return static_cast<size_t>(model_->num_objectives());
  }
  ObjectiveVector Eval(const std::vector<double>& x) const override;

  /// Decodes a normalized decision vector into per-subQ raw confs.
  MooSolution Decode(const std::vector<double>& x) const;

 private:
  const SubQObjectiveModel* model_;
  bool fine_grained_;
  size_t dims_;
  std::vector<size_t> c_idx_, p_idx_, s_idx_;  // indices into the 19-dim space
};

}  // namespace sparkopt
