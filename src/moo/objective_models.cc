#include "moo/objective_models.h"

#include <algorithm>
#include <cmath>

namespace sparkopt {

ObjectiveVector AnalyticSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  ++evals_;
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  const auto obj =
      evaluator_.Evaluate(subq, tc, tp, ts, CardinalitySource::kEstimated);
  return {obj.analytical_latency, obj.cost};
}

ObjectiveVector LearnedSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  ++evals_;
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  const QueryStage stage = evaluator_.BuildStage(
      subq, tc, tp, ts, CardinalitySource::kEstimated);
  const auto features = StageFeatures(
      evaluator_.query().plan, stage, conf, /*use_true_cards=*/false,
      /*beta=*/{}, /*gamma=*/{}, /*drop_theta_p=*/false);
  const auto pred = model_->Predict(features);
  const double latency = std::max(pred[0], 1e-4);
  const double io_mb = std::max(pred[1], 0.0);
  const int cores = tc.TotalCores();
  const double mem_gb = tc.executor_memory_gb * tc.executor_instances;
  const double cost =
      CloudCost(prices_, cores, mem_gb, latency, io_mb / 1024.0);
  return {latency, cost};
}

}  // namespace sparkopt
