#include "moo/objective_models.h"

#include <algorithm>
#include <cmath>

namespace sparkopt {

ObjectiveVector AnalyticSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  const auto obj =
      evaluator_.Evaluate(subq, tc, tp, ts, CardinalitySource::kEstimated);
  return {obj.analytical_latency, obj.cost};
}

namespace {

/// Latency/cost derivation shared by the single and batched learned
/// paths (`pred` = {latency, io_mb} from the regressor).
ObjectiveVector DeriveObjectives(const PriceBook& prices,
                                 const ContextParams& tc, const double* pred) {
  const double latency = std::max(pred[0], 1e-4);
  const double io_mb = std::max(pred[1], 0.0);
  const int cores = tc.TotalCores();
  const double mem_gb = tc.executor_memory_gb * tc.executor_instances;
  const double cost =
      CloudCost(prices, cores, mem_gb, latency, io_mb / 1024.0);
  return {latency, cost};
}

}  // namespace

ObjectiveVector LearnedSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  const QueryStage stage = evaluator_.BuildStage(
      subq, tc, tp, ts, CardinalitySource::kEstimated);
  const auto features = StageFeatures(
      evaluator_.query().plan, stage, conf, /*use_true_cards=*/false,
      /*beta=*/{}, /*gamma=*/{}, /*drop_theta_p=*/false);
  const auto pred = model_->Predict(features);
  return DeriveObjectives(prices_, tc, pred.data());
}

void LearnedSubQModel::EvaluateBatch(
    int subq, const std::vector<std::vector<double>>& confs,
    std::vector<ObjectiveVector>* out) const {
  out->resize(confs.size());
  if (confs.empty()) return;
  evals_.fetch_add(confs.size(), std::memory_order_relaxed);

  const size_t d = model_->input_dim();
  const size_t k = model_->output_dim();
  thread_local std::vector<double> features;
  thread_local std::vector<double> preds;
  thread_local Mlp::BatchScratch scratch;
  features.resize(confs.size() * d);
  preds.resize(confs.size() * k);

  for (size_t i = 0; i < confs.size(); ++i) {
    const ContextParams tc = DecodeContext(confs[i]);
    const PlanParams tp = DecodePlan(confs[i]);
    const StageParams ts = DecodeStage(confs[i]);
    const QueryStage stage = evaluator_.BuildStage(
        subq, tc, tp, ts, CardinalitySource::kEstimated);
    const auto row = StageFeatures(
        evaluator_.query().plan, stage, confs[i], /*use_true_cards=*/false,
        /*beta=*/{}, /*gamma=*/{}, /*drop_theta_p=*/false);
    std::copy(row.begin(), row.end(), features.begin() + i * d);
  }
  model_->PredictBatchInto(features.data(), confs.size(), preds.data(),
                           &scratch);
  for (size_t i = 0; i < confs.size(); ++i) {
    (*out)[i] = DeriveObjectives(prices_, DecodeContext(confs[i]),
                                 preds.data() + i * k);
  }
}

}  // namespace sparkopt
