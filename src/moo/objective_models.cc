#include "moo/objective_models.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "params/sampler.h"

namespace sparkopt {

void AnalyticSubQModel::set_num_objectives(int k) {
  SPARKOPT_CHECK(k == 2 || k == 3)
      << "AnalyticSubQModel supports 2 or 3 objectives, got " << k;
  num_objectives_ = k;
}

void LearnedSubQModel::set_num_objectives(int k) {
  SPARKOPT_CHECK(k == 2 || k == 3)
      << "LearnedSubQModel supports 2 or 3 objectives, got " << k;
  num_objectives_ = k;
}

ObjectiveVector AnalyticSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  const auto obj =
      evaluator_.Evaluate(subq, tc, tp, ts, CardinalitySource::kEstimated);
  if (num_objectives_ == 3) {
    return {obj.analytical_latency, obj.cost, obj.io_bytes / 1e9};
  }
  return {obj.analytical_latency, obj.cost};
}

namespace {

/// Latency/cost derivation shared by the single and batched learned
/// paths (`pred` = {latency, io_mb} from the regressor). With k = 3 the
/// predicted IO itself becomes the third objective (gigabytes).
ObjectiveVector DeriveObjectives(const PriceBook& prices,
                                 const ContextParams& tc, const double* pred,
                                 int k) {
  const double latency = std::max(pred[0], 1e-4);
  const double io_mb = std::max(pred[1], 0.0);
  const int cores = tc.TotalCores();
  const double mem_gb = tc.executor_memory_gb * tc.executor_instances;
  const double cost =
      CloudCost(prices, cores, mem_gb, latency, io_mb / 1024.0);
  if (k == 3) return {latency, cost, io_mb / 1024.0};
  return {latency, cost};
}

}  // namespace

ObjectiveVector LearnedSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  const QueryStage stage = evaluator_.BuildStage(
      subq, tc, tp, ts, CardinalitySource::kEstimated);
  const auto features = StageFeatures(
      evaluator_.query().plan, stage, conf, /*use_true_cards=*/false,
      /*beta=*/{}, /*gamma=*/{}, /*drop_theta_p=*/false);
  if (sink_ != nullptr) {
    std::vector<double> pred(model_->output_dim());
    sink_->Predict(*model_, features.data(), 1, pred.data());
    return DeriveObjectives(prices_, tc, pred.data(), num_objectives_);
  }
  const auto pred = model_->Predict(features);
  return DeriveObjectives(prices_, tc, pred.data(), num_objectives_);
}

void LearnedSubQModel::EvaluateBatch(
    int subq, const std::vector<std::vector<double>>& confs,
    std::vector<ObjectiveVector>* out) const {
  out->resize(confs.size());
  if (confs.empty()) return;
  evals_.fetch_add(confs.size(), std::memory_order_relaxed);

  const size_t d = model_->input_dim();
  const size_t k = model_->output_dim();
  thread_local std::vector<double> features;
  thread_local std::vector<double> preds;
  thread_local Mlp::BatchScratch scratch;
  features.resize(confs.size() * d);
  preds.resize(confs.size() * k);

  for (size_t i = 0; i < confs.size(); ++i) {
    const ContextParams tc = DecodeContext(confs[i]);
    const PlanParams tp = DecodePlan(confs[i]);
    const StageParams ts = DecodeStage(confs[i]);
    const QueryStage stage = evaluator_.BuildStage(
        subq, tc, tp, ts, CardinalitySource::kEstimated);
    const auto row = StageFeatures(
        evaluator_.query().plan, stage, confs[i], /*use_true_cards=*/false,
        /*beta=*/{}, /*gamma=*/{}, /*drop_theta_p=*/false);
    std::copy(row.begin(), row.end(), features.begin() + i * d);
  }
  if (sink_ != nullptr) {
    sink_->Predict(*model_, features.data(), confs.size(), preds.data());
  } else {
    model_->PredictBatchInto(features.data(), confs.size(), preds.data(),
                             &scratch);
  }
  for (size_t i = 0; i < confs.size(); ++i) {
    (*out)[i] = DeriveObjectives(prices_, DecodeContext(confs[i]),
                                 preds.data() + i * k, num_objectives_);
  }
}

// ---- Multi-fidelity screening ------------------------------------------

void SelectSurvivors2(const std::vector<ObjectiveVector>& tier0,
                      double survival_margin, int min_promote,
                      double promote_frac, size_t keep_prefix,
                      std::vector<size_t>* out) {
  out->clear();
  const size_t n = tier0.size();
  if (n == 0) return;
  const size_t nk = tier0[0].size();
  const std::vector<size_t> front = ParetoIndices(tier0);

  // Margin ratio against the tier-0 front (see header). Denominators are
  // floored to keep near-zero objectives from exploding the ratio.
  std::vector<double> ratio(n, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t g : front) {
      double worst = 0.0;
      for (size_t d = 0; d < nk; ++d) {
        worst = std::max(worst,
                         tier0[i][d] / std::max(tier0[g][d], 1e-12));
      }
      ratio[i] = std::min(ratio[i], worst);
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (ratio[a] != ratio[b]) return ratio[a] < ratio[b];
    return a < b;
  });

  size_t in_band = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ratio[i] <= 1.0 + survival_margin) ++in_band;
  }
  size_t floor_k = std::max<size_t>(
      std::max(min_promote, 0),
      static_cast<size_t>(
          std::ceil(promote_frac * static_cast<double>(n))));
  floor_k = std::clamp<size_t>(floor_k, std::min<size_t>(n, 2), n);
  const size_t k = std::max(in_band, floor_k);

  std::vector<char> taken(n, 0);
  for (size_t i = 0; i < k; ++i) taken[order[i]] = 1;
  for (size_t i = 0; i < std::min(keep_prefix, n); ++i) taken[i] = 1;
  // Extreme guarantee: the boundary (HMOOC3) aggregation is built from
  // per-objective minima, and a candidate that is near-best on one
  // objective but poor on the other scores a bad dominance ratio. Promote
  // the top candidates of each single objective so a tier-0 screen can
  // never starve the extremes of the tier-1 front.
  const size_t per_obj =
      std::min<size_t>(n, std::max<size_t>(1, std::max(min_promote, 0) / 2));
  for (size_t d = 0; d < nk; ++d) {
    std::vector<size_t> by_obj(n);
    std::iota(by_obj.begin(), by_obj.end(), size_t{0});
    std::partial_sort(by_obj.begin(), by_obj.begin() + per_obj, by_obj.end(),
                      [&](size_t a, size_t b) {
                        if (tier0[a][d] != tier0[b][d]) {
                          return tier0[a][d] < tier0[b][d];
                        }
                        return a < b;
                      });
    for (size_t i = 0; i < per_obj; ++i) taken[by_obj[i]] = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    if (taken[i]) out->push_back(i);
  }
}

bool ScreeningSubQModel::usable() const {
  switch (fidelity_.mode) {
    case FidelityMode::kOff:
      return false;
    case FidelityMode::kAnalytic:
      return tier1_->screen_evaluator() != nullptr;
    case FidelityMode::kDistilled: {
      if (fidelity_.distilled == nullptr ||
          static_cast<int>(fidelity_.distilled->size()) !=
              tier1_->num_subqs()) {
        return false;
      }
      for (const auto& reg : *fidelity_.distilled) {
        if (!reg.trained()) return false;
        // A screen must predict one value per tier-1 objective.
        if (static_cast<int>(reg.output_dim()) != tier1_->num_objectives()) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

void ScreeningSubQModel::EvaluateBatch(
    int subq, const std::vector<std::vector<double>>& confs,
    std::vector<ObjectiveVector>* out) const {
  const size_t n = confs.size();
  // Below the promotion floor the screen cannot prune anything — skip the
  // tier-0 pass entirely and keep single-fidelity behavior.
  const size_t floor_k = std::max<size_t>(
      std::max(fidelity_.min_promote, 0),
      static_cast<size_t>(
          std::ceil(fidelity_.promote_frac * static_cast<double>(n))));
  if (n <= std::max<size_t>(floor_k, 2)) {
    tier1_->EvaluateBatch(subq, confs, out);
    return;
  }

  // Tier 0: screen every candidate. Screen objective width follows the
  // tier-1 model (the distilled screens are trained at the same width).
  const size_t nk = static_cast<size_t>(tier1_->num_objectives());
  std::vector<ObjectiveVector> t0(n);
  if (fidelity_.mode == FidelityMode::kDistilled) {
    const Regressor& reg = (*fidelity_.distilled)[subq];
    const size_t d = static_cast<size_t>(reg.input_dim());
    thread_local std::vector<double> flat;
    thread_local std::vector<double> preds;
    thread_local Mlp::BatchScratch scratch;
    flat.assign(n * d, 0.0);
    preds.resize(n * nk);
    for (size_t i = 0; i < n; ++i) {
      const size_t m = std::min(d, confs[i].size());
      std::copy(confs[i].begin(), confs[i].begin() + m,
                flat.begin() + i * d);
    }
    reg.PredictBatchInto(flat.data(), n, preds.data(), &scratch);
    for (size_t i = 0; i < n; ++i) {
      t0[i] = {std::max(preds[nk * i], 1e-4),
               std::max(preds[nk * i + 1], 1e-12)};
      if (nk == 3) t0[i].push_back(std::max(preds[nk * i + 2], 1e-12));
    }
  } else {
    const SubQEvaluator* screen = tier1_->screen_evaluator();
    for (size_t i = 0; i < n; ++i) {
      const auto o = screen->EvaluateScreen(
          subq, DecodeContext(confs[i]), DecodePlan(confs[i]),
          DecodeStage(confs[i]), CardinalitySource::kEstimated);
      t0[i] = {o.analytical_latency, o.cost};
      if (nk == 3) t0[i].push_back(o.io_bytes / 1e9);
    }
  }
  tier0_evals_.fetch_add(n, std::memory_order_relaxed);
  obs::Count("hmooc.mf_tier0_evals", n);

  std::vector<size_t> survivors;
  SelectSurvivors2(t0, fidelity_.survival_margin, fidelity_.min_promote,
                   fidelity_.promote_frac, /*keep_prefix=*/0, &survivors);

  // Tier 1: escalate the survivors; the final objectives are tier-1 only.
  std::vector<std::vector<double>> promoted;
  promoted.reserve(survivors.size());
  for (size_t s : survivors) promoted.push_back(confs[s]);
  std::vector<ObjectiveVector> t1;
  tier1_->EvaluateBatch(subq, promoted, &t1);
  tier1_evals_.fetch_add(survivors.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  obs::Count("hmooc.mf_tier1_evals", survivors.size());
  obs::Observe("hmooc.mf_survival_rate",
               static_cast<double>(survivors.size()) /
                   static_cast<double>(n));

  constexpr double kInf = std::numeric_limits<double>::infinity();
  out->assign(n, ObjectiveVector(nk, kInf));
  for (size_t j = 0; j < survivors.size(); ++j) {
    (*out)[survivors[j]] = std::move(t1[j]);
  }
}

Result<std::vector<Regressor>> TrainDistilledScreens(
    const SubQObjectiveModel& tier1, int samples, uint64_t seed) {
  if (samples < 16) {
    return Status::InvalidArgument(
        "TrainDistilledScreens: need >= 16 samples");
  }
  Rng rng(seed);
  const auto& space = SparkParamSpace();
  // Teacher labels on tier-1 objectives; a second unlabeled sample gets
  // pseudo-labels from the teacher during distillation. Margin 0 so the
  // screen covers every conf a solve (whatever its search_margin) emits.
  const auto labeled = SampleLatinHypercube(
      space, static_cast<size_t>(samples), &rng, /*margin=*/0.0);
  auto distill_x = labeled;
  const auto extra = SampleLatinHypercube(
      space, static_cast<size_t>(samples), &rng, /*margin=*/0.0);
  distill_x.insert(distill_x.end(), extra.begin(), extra.end());

  const int dims = static_cast<int>(space.size());
  const int nk = tier1.num_objectives();
  std::vector<Regressor> screens;
  screens.reserve(tier1.num_subqs());
  std::vector<ObjectiveVector> fs;
  for (int i = 0; i < tier1.num_subqs(); ++i) {
    tier1.EvaluateBatch(i, labeled, &fs);
    Matrix y;
    y.reserve(fs.size());
    for (const auto& f : fs) y.push_back(ObjectiveVector(f.begin(), f.end()));

    Mlp::TrainOptions topts;
    topts.epochs = 100;
    topts.batch_size = 32;
    topts.seed = HashCombine(seed, 0xD1 + static_cast<uint64_t>(i));
    Regressor teacher(dims, nk, {32, 16},
                      HashCombine(seed, 0x7E + static_cast<uint64_t>(i)));
    SPARKOPT_RETURN_NOT_OK(teacher.Fit(labeled, y, topts));

    Mlp::TrainOptions sopts = topts;
    sopts.seed = HashCombine(seed, 0x5D + static_cast<uint64_t>(i));
    auto student = teacher.Distill(distill_x, {16}, sopts);
    if (!student.ok()) return student.status();
    screens.push_back(std::move(*student));
  }
  return screens;
}

}  // namespace sparkopt
