#pragma once

#include <cstdint>
#include <vector>

#include "moo/problem.h"

/// \file hmooc.h
/// \brief Hierarchical MOO with Constraints (Section 5.1) — the paper's
/// compile-time optimizer.
///
/// The large problem over (theta_c, {theta_p}, {theta_s}) is decomposed
/// into per-subQ problems constrained to share theta_c:
///
///  1. subQ tuning (Algorithm 1): sample theta_c candidates, cluster them
///     (k-means) and solve the theta_p MOO only for each cluster
///     representative against a shared theta_p sample pool; assign each
///     member its representative's optimal theta_p set; enrich theta_c by
///     crossover (Appendix C.1) and reuse the cluster assignments.
///  2. DAG aggregation (Section 5.1.2): recover query-level Pareto
///     solutions from the per-subQ effective sets under the identical-
///     theta_c constraint, by one of
///       - HMOOC1: exact divide-and-conquer Minkowski merging,
///       - HMOOC2: weighted-sum approximation (Algorithm 4),
///       - HMOOC3: boundary (extreme-point) approximation.
///  3. WUN recommendation over the recovered front.

namespace sparkopt {

/// DAG-aggregation strategy.
enum class DagAggregation {
  kDivideAndConquer = 0,  ///< HMOOC1: exact, highest cost
  kWeightedSum,           ///< HMOOC2: subset of the true front
  kBoundary               ///< HMOOC3: kn extreme points, fastest
};

const char* DagAggregationName(DagAggregation a);

struct HmoocOptions {
  int theta_c_samples = 96;    ///< initial theta_c candidates (random/LHS)
  int clusters = 12;           ///< theta_c clusters (Algorithm 1, line 2)
  int theta_p_samples = 128;   ///< theta_p/theta_s pool per representative
  int enriched_samples = 48;   ///< crossover-generated theta_c candidates
  bool grid_init = false;      ///< grid instead of random theta_c init
  /// Search-range refinement (Section 6.3): samples stay within
  /// [margin, 1-margin] of each normalized parameter range so model
  /// predictions at the domain extremes do not mislead the optimizer.
  double search_margin = 0.08;
  DagAggregation aggregation = DagAggregation::kBoundary;
  /// HMOOC1 only: cap on each intermediate divide-and-conquer front. When
  /// a merged front exceeds the cap it is thinned to the points closest
  /// to the weighted utopia, keeping the extremes (see ThinFront).
  int dc_front_cap = 192;
  /// HMOOC1 only: optional epsilon-dominance budget applied to each
  /// intermediate front before the cap (EpsilonThin2 in pareto_flat.h).
  /// <= 0 (the default) disables thinning and keeps the exact,
  /// bitwise-reproducible aggregation path.
  double dc_epsilon = 0.0;
  int ws_pairs = 11;           ///< weight pairs for HMOOC2
  /// HMOOC2 only: normalize objectives per subQ before the weighted pick
  /// (Algorithm 4, line 5). Normalization spreads the weight sweep more
  /// evenly but voids the exact-Pareto guarantee of Lemma 1, which holds
  /// for raw-objective weighted sums; disable for the exact variant.
  bool hmooc2_normalize_per_subq = true;
  /// Worker threads for the independent fan-outs (per-cluster
  /// representative solves, per-member pool evaluation, per-candidate DAG
  /// aggregation). 0 = hardware concurrency, 1 = sequential. Results are
  /// bitwise identical at any thread count: every parallel region writes
  /// index-addressed slots and all RNG draws stay on the calling thread.
  int num_threads = 0;
  /// Multi-fidelity screening of the subQ-tuning batches (DESIGN.md
  /// section 13). The default (FidelityMode::kOff) keeps the solve
  /// bitwise identical to the single-fidelity path; any screen mode that
  /// is unusable with the given model silently falls back to kOff.
  FidelityOptions fidelity;
  uint64_t seed = 1;
};

/// \brief The HMOOC compile-time solver.
class HmoocSolver {
 public:
  HmoocSolver(const SubQObjectiveModel* model, HmoocOptions opts)
      : model_(model), opts_(opts) {}

  /// Runs subQ tuning + DAG aggregation; returns the query-level Pareto
  /// set with fine-grained per-subQ configurations.
  MooRunResult Solve() const;

 private:
  const SubQObjectiveModel* model_;
  HmoocOptions opts_;
};

}  // namespace sparkopt
