#include "moo/problem.h"

#include <limits>

namespace sparkopt {

void SubQObjectiveModel::EvaluateBatch(
    int subq, const std::vector<std::vector<double>>& confs,
    std::vector<ObjectiveVector>* out) const {
  out->resize(confs.size());
  for (size_t i = 0; i < confs.size(); ++i) {
    (*out)[i] = Evaluate(subq, confs[i]);
  }
}

ObjectiveVector SubQObjectiveModel::EvaluateQuery(
    const std::vector<double>& theta_c_conf,
    const std::vector<std::vector<double>>& per_subq_conf) const {
  const size_t k = static_cast<size_t>(num_objectives());
  ObjectiveVector total(k, 0.0);
  for (int i = 0; i < num_subqs(); ++i) {
    // Each per-subQ conf shares theta_c from theta_c_conf.
    std::vector<double> conf =
        per_subq_conf[per_subq_conf.size() == 1 ? 0 : i];
    for (size_t j = 0; j < 8 && j < theta_c_conf.size(); ++j) {
      conf[j] = theta_c_conf[j];
    }
    const auto f = Evaluate(i, conf);
    for (size_t d = 0; d < k; ++d) total[d] += f[d];
  }
  return total;
}

size_t MooRunResult::Recommend(const std::vector<double>& weights) const {
  std::vector<ObjectiveVector> pts;
  pts.reserve(pareto.size());
  for (const auto& s : pareto) pts.push_back(s.objectives);
  return WeightedUtopiaNearest(pts, weights);
}

FlatProblem::FlatProblem(const SubQObjectiveModel* model, bool fine_grained)
    : model_(model), fine_grained_(fine_grained) {
  const auto& space = SparkParamSpace();
  c_idx_ = space.CategoryIndices(ParamCategory::kContext);
  p_idx_ = space.CategoryIndices(ParamCategory::kPlan);
  s_idx_ = space.CategoryIndices(ParamCategory::kStage);
  const size_t groups = fine_grained_ ? model_->num_subqs() : 1;
  dims_ = c_idx_.size() + groups * (p_idx_.size() + s_idx_.size());
}

MooSolution FlatProblem::Decode(const std::vector<double>& x) const {
  const auto& space = SparkParamSpace();
  const size_t groups = fine_grained_ ? model_->num_subqs() : 1;
  MooSolution sol;

  // Unit-cube base config with defaults everywhere, then overwrite.
  std::vector<double> base_unit(kNumSparkParams, 0.0);
  {
    const auto defaults = space.Defaults();
    base_unit = space.Normalize(defaults);
  }
  size_t pos = 0;
  for (size_t j : c_idx_) base_unit[j] = x[pos++];

  sol.per_subq_conf.reserve(groups);
  for (size_t g = 0; g < groups; ++g) {
    std::vector<double> unit = base_unit;
    for (size_t j : p_idx_) unit[j] = x[pos++];
    for (size_t j : s_idx_) unit[j] = x[pos++];
    sol.per_subq_conf.push_back(space.Denormalize(unit));
  }
  sol.conf = sol.per_subq_conf.front();
  if (!fine_grained_) sol.per_subq_conf.clear();
  return sol;
}

ObjectiveVector FlatProblem::Eval(const std::vector<double>& x) const {
  MooSolution sol = Decode(x);
  const size_t k = static_cast<size_t>(model_->num_objectives());
  ObjectiveVector total(k, 0.0);
  const int m = model_->num_subqs();
  for (int i = 0; i < m; ++i) {
    const auto& conf = fine_grained_ ? sol.per_subq_conf[i] : sol.conf;
    const auto f = model_->Evaluate(i, conf);
    for (size_t d = 0; d < k; ++d) total[d] += f[d];
  }
  return total;
}

}  // namespace sparkopt
