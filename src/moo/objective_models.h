#pragma once

#include <atomic>
#include <memory>

#include "model/features.h"
#include "model/inference_sink.h"
#include "model/mlp.h"
#include "model/subq_evaluator.h"
#include "moo/problem.h"

/// \file objective_models.h
/// \brief Concrete phi implementations backing the MOO solvers.
///
/// AnalyticSubQModel evaluates the white-box compile-time cost directly
/// (CBO-estimated cardinalities, uniform-partition and no-contention
/// assumptions — exactly the paper's compile-time modeling constraints).
/// LearnedSubQModel runs the trained subQ regressor on extracted features,
/// reproducing the paper's learned-model optimization loop including its
/// model error.

namespace sparkopt {

/// \brief White-box compile-time phi: wraps SubQEvaluator.
class AnalyticSubQModel : public SubQObjectiveModel {
 public:
  AnalyticSubQModel(const Query* query, const ClusterSpec& cluster,
                    const CostModelParams& cost,
                    const PriceBook& prices = PriceBook(),
                    size_t eval_cache_capacity = EvalCache::kDefaultCapacity)
      : evaluator_(query, cluster, cost, prices, eval_cache_capacity) {}

  int num_subqs() const override { return evaluator_.num_subqs(); }
  int num_objectives() const override { return num_objectives_; }

  /// Switches between {latency, cost} (k = 2, default) and
  /// {latency, cost, io_gb} (k = 3). Call before solving; k = 2 output
  /// is unchanged by the existence of this knob.
  void set_num_objectives(int k);

  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override;

  size_t eval_count() const override {
    return evals_.load(std::memory_order_relaxed);
  }

  const SubQEvaluator* screen_evaluator() const override {
    return &evaluator_;
  }

  const SubQEvaluator& evaluator() const { return evaluator_; }
  SubQEvaluator& evaluator() { return evaluator_; }

 private:
  SubQEvaluator evaluator_;
  int num_objectives_ = 2;
  // Relaxed atomic: solver worker threads evaluate concurrently.
  mutable std::atomic<size_t> evals_{0};
};

/// \brief Learned phi: features from the hypothesized stage, predictions
/// from the trained subQ regressor; cost derived from predicted latency
/// and IO via the price book (the paper's cost objective construction).
class LearnedSubQModel : public SubQObjectiveModel {
 public:
  LearnedSubQModel(const Query* query, const ClusterSpec& cluster,
                   const CostModelParams& cost, const Regressor* subq_model,
                   const PriceBook& prices = PriceBook(),
                   size_t eval_cache_capacity = EvalCache::kDefaultCapacity)
      : evaluator_(query, cluster, cost, prices, eval_cache_capacity),
        model_(subq_model),
        prices_(prices) {}

  int num_subqs() const override { return evaluator_.num_subqs(); }
  int num_objectives() const override { return num_objectives_; }

  /// See AnalyticSubQModel::set_num_objectives. The learned third
  /// objective is the regressor's predicted IO converted to gigabytes.
  void set_num_objectives(int k);

  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override;

  /// True batched path: per-conf feature extraction into one flat
  /// row-major buffer, a single Regressor::PredictBatchInto call, then
  /// the per-row latency/cost derivation. Bitwise identical to the
  /// per-call Evaluate loop.
  void EvaluateBatch(int subq,
                     const std::vector<std::vector<double>>& confs,
                     std::vector<ObjectiveVector>* out) const override;

  size_t eval_count() const override {
    return evals_.load(std::memory_order_relaxed);
  }

  const SubQEvaluator* screen_evaluator() const override {
    return &evaluator_;
  }

  SubQEvaluator& evaluator() { return evaluator_; }

  /// \brief Routes regressor inference through `sink` instead of calling
  /// Regressor::PredictBatchInto directly (nullptr restores the direct
  /// call). The sink contract (see model/inference_sink.h) guarantees
  /// bitwise-identical predictions, so solver output is unchanged; the
  /// tuning service uses this to coalesce rows across sessions.
  void set_inference_sink(InferenceSink* sink) { sink_ = sink; }
  InferenceSink* inference_sink() const { return sink_; }

 private:
  SubQEvaluator evaluator_;
  const Regressor* model_;
  PriceBook prices_;
  int num_objectives_ = 2;
  InferenceSink* sink_ = nullptr;
  mutable std::atomic<size_t> evals_{0};
};

/// \brief Dominance-aware survival selection over tier-0 objectives
/// (2 or 3 objectives — taken from the rows of `tier0` — minimization).
///
/// Candidate i's margin ratio is r_i = min over tier-0 Pareto-front
/// points g of max_d(f_id / g_d) — the smallest uniform scaling
/// of some front point that weakly dominates i. Front members score
/// r = 1, so the exact tier-0 extremes always survive. Survivors are the
/// first max(|{i : r_i <= 1 + margin}|, K) candidates in ascending
/// (r, index) order, with K = max(min_promote, ceil(promote_frac * n))
/// clamped to [min(n, 2), n]; because the margin band is a prefix of
/// that order, a larger margin always yields a superset of survivors.
/// Additionally the top max(1, min_promote / 2) candidates of each
/// single objective are always promoted (the extreme guarantee: boundary
/// DAG aggregation consumes per-objective minima, which the dominance
/// ratio alone can starve), and indices in [0, keep_prefix) are
/// force-included (runtime incumbents). `out` receives the surviving
/// indices in ascending order.
void SelectSurvivors2(const std::vector<ObjectiveVector>& tier0,
                      double survival_margin, int min_promote,
                      double promote_frac, size_t keep_prefix,
                      std::vector<size_t>* out);

/// \brief Tiered (multi-fidelity) phi: a cheap tier-0 screen over the
/// whole batch, full tier-1 evaluation of the survivors only.
///
/// Wraps any SubQObjectiveModel. EvaluateBatch screens every conf at
/// tier 0 (analytic EvaluateScreen or per-subQ distilled regressors per
/// FidelityOptions), selects survivors with SelectSurvivors2, and
/// escalates only those to tier1->EvaluateBatch. Pruned entries are
/// reported as {+inf, +inf}: any finite point dominates them, so they
/// can never enter a Pareto front — and the >= 2 survivor floor
/// guarantees finite points exist. Single-point Evaluate calls pass
/// through to tier 1 unscreened (they are not a pool to thin).
///
/// eval_count() delegates to tier 1, so MooRunResult::evaluations shows
/// exactly the full-fidelity evaluations the screen saved.
class ScreeningSubQModel : public SubQObjectiveModel {
 public:
  ScreeningSubQModel(const SubQObjectiveModel* tier1,
                     const FidelityOptions& fidelity)
      : tier1_(tier1), fidelity_(fidelity) {}

  /// False when the configured mode cannot run against this tier-1 model
  /// (kAnalytic without a screen_evaluator(), kDistilled without one
  /// trained screen per subQ). Callers should fall back to tier 1.
  bool usable() const;

  int num_subqs() const override { return tier1_->num_subqs(); }
  int num_objectives() const override { return tier1_->num_objectives(); }

  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override {
    return tier1_->Evaluate(subq, conf);
  }

  void EvaluateBatch(int subq,
                     const std::vector<std::vector<double>>& confs,
                     std::vector<ObjectiveVector>* out) const override;

  size_t eval_count() const override { return tier1_->eval_count(); }

  const SubQEvaluator* screen_evaluator() const override {
    return tier1_->screen_evaluator();
  }

  /// Tier counters (across all batches; worker-thread safe).
  uint64_t tier0_evals() const {
    return tier0_evals_.load(std::memory_order_relaxed);
  }
  uint64_t tier1_evals() const {
    return tier1_evals_.load(std::memory_order_relaxed);
  }
  uint64_t screened_batches() const {
    return batches_.load(std::memory_order_relaxed);
  }

 private:
  const SubQObjectiveModel* tier1_;
  FidelityOptions fidelity_;
  mutable std::atomic<uint64_t> tier0_evals_{0};
  mutable std::atomic<uint64_t> tier1_evals_{0};
  mutable std::atomic<uint64_t> batches_{0};
};

/// \brief Trains one tiny tier-0 screen per subQ for FidelityMode::
/// kDistilled: `samples` LHS-sampled full confs are labeled by the
/// tier-1 model (EvaluateBatch), a mid-capacity teacher regressor fits
/// conf -> the tier-1 objective vector (k = tier1.num_objectives())
/// per subQ, and Regressor::Distill compresses
/// it into the final tiny student over a 2x teacher-pseudo-labeled
/// sample. Deterministic given `seed`. The tier-1 labeling counts
/// toward tier1's eval_count (it is real full-fidelity work).
Result<std::vector<Regressor>> TrainDistilledScreens(
    const SubQObjectiveModel& tier1, int samples, uint64_t seed);

}  // namespace sparkopt
