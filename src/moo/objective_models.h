#pragma once

#include <atomic>
#include <memory>

#include "model/features.h"
#include "model/mlp.h"
#include "model/subq_evaluator.h"
#include "moo/problem.h"

/// \file objective_models.h
/// \brief Concrete phi implementations backing the MOO solvers.
///
/// AnalyticSubQModel evaluates the white-box compile-time cost directly
/// (CBO-estimated cardinalities, uniform-partition and no-contention
/// assumptions — exactly the paper's compile-time modeling constraints).
/// LearnedSubQModel runs the trained subQ regressor on extracted features,
/// reproducing the paper's learned-model optimization loop including its
/// model error.

namespace sparkopt {

/// \brief White-box compile-time phi: wraps SubQEvaluator.
class AnalyticSubQModel : public SubQObjectiveModel {
 public:
  AnalyticSubQModel(const Query* query, const ClusterSpec& cluster,
                    const CostModelParams& cost,
                    const PriceBook& prices = PriceBook())
      : evaluator_(query, cluster, cost, prices) {}

  int num_subqs() const override { return evaluator_.num_subqs(); }

  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override;

  size_t eval_count() const override {
    return evals_.load(std::memory_order_relaxed);
  }

  const SubQEvaluator& evaluator() const { return evaluator_; }
  SubQEvaluator& evaluator() { return evaluator_; }

 private:
  SubQEvaluator evaluator_;
  // Relaxed atomic: solver worker threads evaluate concurrently.
  mutable std::atomic<size_t> evals_{0};
};

/// \brief Learned phi: features from the hypothesized stage, predictions
/// from the trained subQ regressor; cost derived from predicted latency
/// and IO via the price book (the paper's cost objective construction).
class LearnedSubQModel : public SubQObjectiveModel {
 public:
  LearnedSubQModel(const Query* query, const ClusterSpec& cluster,
                   const CostModelParams& cost, const Regressor* subq_model,
                   const PriceBook& prices = PriceBook())
      : evaluator_(query, cluster, cost, prices),
        model_(subq_model),
        prices_(prices) {}

  int num_subqs() const override { return evaluator_.num_subqs(); }

  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override;

  /// True batched path: per-conf feature extraction into one flat
  /// row-major buffer, a single Regressor::PredictBatchInto call, then
  /// the per-row latency/cost derivation. Bitwise identical to the
  /// per-call Evaluate loop.
  void EvaluateBatch(int subq,
                     const std::vector<std::vector<double>>& confs,
                     std::vector<ObjectiveVector>* out) const override;

  size_t eval_count() const override {
    return evals_.load(std::memory_order_relaxed);
  }

  SubQEvaluator& evaluator() { return evaluator_; }

 private:
  SubQEvaluator evaluator_;
  const Regressor* model_;
  PriceBook prices_;
  mutable std::atomic<size_t> evals_{0};
};

}  // namespace sparkopt
