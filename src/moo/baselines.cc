#include "moo/baselines.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/pareto_flat.h"
#include "common/rng.h"

namespace sparkopt {

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<double> RandomPoint(size_t d, Rng* rng) {
  std::vector<double> x(d);
  for (auto& v : x) v = rng->Uniform();
  return x;
}

// Evenly spread weight vectors over the k-simplex. k = 2 keeps the
// historical `w / (n - 1)` ladder bitwise (0.5 for a single weight);
// k = 3 uses the smallest simplex lattice {(a, b, t-a-b) / t} with at
// least `num_weights` points in (a, b) lexicographic order — the same
// construction as DagAggregator::AggregateWeightedSum so the WS
// baseline and HMOOC2 scalarize over identical weight sets.
std::vector<double> WeightLadder(size_t nk, int num_weights) {
  std::vector<double> w;
  if (num_weights <= 0) return w;
  if (nk == 3) {
    int t = 1;
    while ((t + 1) * (t + 2) / 2 < num_weights) ++t;
    const int rows = (t + 1) * (t + 2) / 2;
    w.reserve(static_cast<size_t>(rows) * 3);
    for (int a = 0; a <= t; ++a) {
      for (int b = 0; b <= t - a; ++b) {
        w.push_back(static_cast<double>(a) / t);
        w.push_back(static_cast<double>(b) / t);
        w.push_back(static_cast<double>(t - a - b) / t);
      }
    }
    return w;
  }
  w.reserve(static_cast<size_t>(num_weights) * 2);
  for (int row = 0; row < num_weights; ++row) {
    const double w0 = num_weights == 1
                          ? 0.5
                          : static_cast<double>(row) / (num_weights - 1);
    w.push_back(w0);
    w.push_back(1.0 - w0);
  }
  return w;
}

MooRunResult FinishResult(const FlatProblem& decoder,
                          std::vector<std::vector<double>> xs,
                          std::vector<ObjectiveVector> fs, double secs,
                          size_t evals) {
  MooRunResult result;
  result.solve_seconds = secs;
  result.evaluations = evals;
  for (size_t i : ParetoIndices(fs)) {
    MooSolution sol = decoder.Decode(xs[i]);
    sol.objectives = fs[i];
    result.pareto.push_back(std::move(sol));
  }
  return result;
}

}  // namespace

MooRunResult SolveWeightedSum(const QueryObjectiveFn& fn,
                              const FlatProblem& decoder,
                              const WsOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opts.seed);
  const size_t d = fn.dims();
  const size_t nk = fn.num_objectives();
  SPARKOPT_CHECK(nk == 2 || nk == 3) << "WS supports 2 or 3 objectives";
  std::vector<std::vector<double>> xs;
  std::vector<ObjectiveVector> fs;
  xs.reserve(opts.samples);
  fs.reserve(opts.samples);
  ObjectiveVector lo(nk, std::numeric_limits<double>::infinity());
  ObjectiveVector hi(nk, -std::numeric_limits<double>::infinity());
  for (int i = 0; i < opts.samples; ++i) {
    xs.push_back(RandomPoint(d, &rng));
    fs.push_back(fn.Eval(xs.back()));
    for (size_t k = 0; k < nk; ++k) {
      lo[k] = std::min(lo[k], fs.back()[k]);
      hi[k] = std::max(hi[k], fs.back()[k]);
    }
  }
  // For each weight vector keep the argmin of the normalized weighted sum.
  const std::vector<double> weights = WeightLadder(nk, opts.num_weights);
  const size_t n_weights = weights.size() / nk;
  std::vector<std::vector<double>> win_x;
  std::vector<ObjectiveVector> win_f;
  for (size_t w = 0; w < n_weights; ++w) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_i = 0;
    for (size_t i = 0; i < fs.size(); ++i) {
      double v = 0.0;
      for (size_t k = 0; k < nk; ++k) {
        const double r = hi[k] > lo[k]
                             ? (fs[i][k] - lo[k]) / (hi[k] - lo[k])
                             : 0.0;
        v += weights[w * nk + k] * r;
      }
      if (v < best) {
        best = v;
        best_i = i;
      }
    }
    win_x.push_back(xs[best_i]);
    win_f.push_back(fs[best_i]);
  }
  return FinishResult(decoder, std::move(win_x), std::move(win_f),
                      Seconds(t0), opts.samples);
}

MooRunResult SolveSoFixedWeights(const QueryObjectiveFn& fn,
                                 const FlatProblem& decoder,
                                 const std::vector<double>& weights,
                                 int samples, uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(seed);
  const size_t d = fn.dims();
  const size_t nk = fn.num_objectives();
  SPARKOPT_CHECK(weights.size() >= nk)
      << "SO-FW needs one weight per objective";
  // Scalarize raw objectives with the given fixed weights (the common
  // practice the paper critiques: no normalization by the Pareto range,
  // just a fixed linear combination of the objectives).
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> best_x;
  ObjectiveVector best_f;
  ObjectiveVector lo(nk, std::numeric_limits<double>::infinity());
  ObjectiveVector hi(nk, -std::numeric_limits<double>::infinity());
  std::vector<std::vector<double>> xs;
  std::vector<ObjectiveVector> fs;
  for (int i = 0; i < samples; ++i) {
    xs.push_back(RandomPoint(d, &rng));
    fs.push_back(fn.Eval(xs.back()));
    for (size_t k = 0; k < nk; ++k) {
      lo[k] = std::min(lo[k], fs.back()[k]);
      hi[k] = std::max(hi[k], fs.back()[k]);
    }
  }
  // Fixed-weight scalarization over z-scored objectives (a fixed, not
  // Pareto-aware, normalization as in prior SO tuners).
  for (size_t i = 0; i < xs.size(); ++i) {
    double v = 0.0;
    for (size_t k = 0; k < nk; ++k) {
      const double r =
          hi[k] > lo[k] ? (fs[i][k] - lo[k]) / (hi[k] - lo[k]) : 0.0;
      v += weights[k] * r;
    }
    if (v < best) {
      best = v;
      best_x = xs[i];
      best_f = fs[i];
    }
  }
  MooRunResult result;
  result.solve_seconds = Seconds(t0);
  result.evaluations = samples;
  MooSolution sol = decoder.Decode(best_x);
  sol.objectives = best_f;
  result.pareto.push_back(std::move(sol));
  return result;
}

// ---------------------------------------------------------------------------
// NSGA-II
// ---------------------------------------------------------------------------

namespace {

struct Individual {
  std::vector<double> x;
  ObjectiveVector f;
  int rank = 0;
  double crowding = 0.0;
};

void NonDominatedSort(std::vector<Individual>* pop) {
  const size_t n = pop->size();
  std::vector<std::vector<size_t>> dominates(n);
  std::vector<int> dominated_by(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates((*pop)[i].f, (*pop)[j].f)) {
        dominates[i].push_back(j);
      } else if (Dominates((*pop)[j].f, (*pop)[i].f)) {
        ++dominated_by[i];
      }
    }
  }
  std::vector<size_t> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (dominated_by[i] == 0) {
      (*pop)[i].rank = 0;
      frontier.push_back(i);
    }
  }
  int rank = 0;
  while (!frontier.empty()) {
    std::vector<size_t> next;
    for (size_t i : frontier) {
      for (size_t j : dominates[i]) {
        if (--dominated_by[j] == 0) {
          (*pop)[j].rank = rank + 1;
          next.push_back(j);
        }
      }
    }
    frontier = std::move(next);
    ++rank;
  }
}

void AssignCrowding(std::vector<Individual>* pop) {
  const size_t n = pop->size();
  if (n == 0) return;
  const size_t nk = (*pop)[0].f.size();
  for (auto& ind : *pop) ind.crowding = 0.0;
  for (size_t k = 0; k < nk; ++k) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*pop)[a].f[k] < (*pop)[b].f[k];
    });
    (*pop)[order.front()].crowding = 1e30;
    (*pop)[order.back()].crowding = 1e30;
    const double range =
        (*pop)[order.back()].f[k] - (*pop)[order.front()].f[k];
    if (range <= 0) continue;
    for (size_t i = 1; i + 1 < n; ++i) {
      (*pop)[order[i]].crowding +=
          ((*pop)[order[i + 1]].f[k] - (*pop)[order[i - 1]].f[k]) / range;
    }
  }
}

bool CrowdedLess(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

double SbxGene(double p1, double p2, double eta, Rng* rng, bool first) {
  const double u = rng->Uniform();
  const double beta =
      u <= 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
               : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
  const double c = first ? 0.5 * ((1 + beta) * p1 + (1 - beta) * p2)
                         : 0.5 * ((1 - beta) * p1 + (1 + beta) * p2);
  return std::clamp(c, 0.0, 1.0);
}

double PolyMutate(double v, double eta, Rng* rng) {
  const double u = rng->Uniform();
  double delta;
  if (u < 0.5) {
    delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
  } else {
    delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
  }
  return std::clamp(v + delta, 0.0, 1.0);
}

}  // namespace

MooRunResult SolveEvo(const QueryObjectiveFn& fn, const FlatProblem& decoder,
                      const EvoOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opts.seed);
  const size_t d = fn.dims();
  size_t evals = 0;

  std::vector<Individual> pop(opts.population);
  for (auto& ind : pop) {
    ind.x = RandomPoint(d, &rng);
    ind.f = fn.Eval(ind.x);
    ++evals;
  }
  NonDominatedSort(&pop);
  AssignCrowding(&pop);

  const double mut_prob = opts.mutation_prob_scale / static_cast<double>(d);
  while (evals < static_cast<size_t>(opts.max_evaluations)) {
    // Binary-tournament mating to create one generation of offspring.
    std::vector<Individual> offspring;
    while (offspring.size() < pop.size() &&
           evals + offspring.size() <
               static_cast<size_t>(opts.max_evaluations)) {
      auto pick = [&]() -> const Individual& {
        const auto& a = pop[rng.NextBounded(pop.size())];
        const auto& b = pop[rng.NextBounded(pop.size())];
        return CrowdedLess(a, b) ? a : b;
      };
      const Individual& p1 = pick();
      const Individual& p2 = pick();
      Individual child;
      child.x.resize(d);
      const bool do_cx = rng.Bernoulli(opts.crossover_prob);
      for (size_t g = 0; g < d; ++g) {
        child.x[g] = do_cx ? SbxGene(p1.x[g], p2.x[g], 15.0, &rng,
                                     rng.Bernoulli(0.5))
                           : p1.x[g];
        if (rng.Bernoulli(mut_prob)) {
          child.x[g] = PolyMutate(child.x[g], 20.0, &rng);
        }
      }
      offspring.push_back(std::move(child));
    }
    for (auto& child : offspring) {
      child.f = fn.Eval(child.x);
      ++evals;
    }
    // Environmental selection over the union.
    for (auto& child : offspring) pop.push_back(std::move(child));
    NonDominatedSort(&pop);
    AssignCrowding(&pop);
    std::sort(pop.begin(), pop.end(), CrowdedLess);
    pop.resize(opts.population);
    if (offspring.empty()) break;
  }

  std::vector<std::vector<double>> xs;
  std::vector<ObjectiveVector> fs;
  for (const auto& ind : pop) {
    xs.push_back(ind.x);
    fs.push_back(ind.f);
  }
  return FinishResult(decoder, std::move(xs), std::move(fs), Seconds(t0),
                      evals);
}

// ---------------------------------------------------------------------------
// Progressive Frontier
// ---------------------------------------------------------------------------

namespace {

// Constrained single-objective solve: minimize objective `k` subject to
// f in [lo, hi] box, by sampling + local refinement.
struct ConstrainedBest {
  bool found = false;
  std::vector<double> x;
  ObjectiveVector f;
};

ConstrainedBest ConstrainedMinimize(const QueryObjectiveFn& fn, int k,
                                    const ObjectiveVector& lo,
                                    const ObjectiveVector& hi, int samples,
                                    int refine_steps, Rng* rng,
                                    size_t* evals) {
  const size_t d = fn.dims();
  ConstrainedBest best;
  auto feasible = [&](const ObjectiveVector& f) {
    for (size_t i = 0; i < lo.size(); ++i) {
      if (f[i] < lo[i] || f[i] > hi[i]) return false;
    }
    return true;
  };
  for (int i = 0; i < samples; ++i) {
    auto x = RandomPoint(d, rng);
    auto f = fn.Eval(x);
    ++*evals;
    if (!feasible(f)) continue;
    if (!best.found || f[k] < best.f[k]) {
      best.found = true;
      best.x = std::move(x);
      best.f = std::move(f);
    }
  }
  if (!best.found) return best;
  // Local refinement (a sampling stand-in for UDAO's MOGD descent).
  for (int step = 0; step < refine_steps; ++step) {
    auto x = best.x;
    const double sigma = 0.08 * (1.0 - static_cast<double>(step) /
                                           std::max(refine_steps, 1));
    for (auto& v : x) {
      v = std::clamp(v + rng->Normal(0.0, sigma), 0.0, 1.0);
    }
    auto f = fn.Eval(x);
    ++*evals;
    if (feasible(f) && f[k] < best.f[k]) {
      best.x = std::move(x);
      best.f = std::move(f);
    }
  }
  return best;
}

}  // namespace

MooRunResult SolveProgressiveFrontier(const QueryObjectiveFn& fn,
                                      const FlatProblem& decoder,
                                      const PfOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(opts.seed);
  size_t evals = 0;
  const size_t nk = fn.num_objectives();
  SPARKOPT_CHECK(nk == 2 || nk == 3) << "PF supports 2 or 3 objectives";
  const ObjectiveVector kInfLo(nk, -1e300);
  const ObjectiveVector kInfHi(nk, 1e300);

  std::vector<std::vector<double>> xs;
  std::vector<ObjectiveVector> fs;
  // Incremental Pareto archive over everything in `fs`: ParetoInsert /
  // ParetoInsert3 keeps it equal (same values, same sorted order) to
  // sort(ParetoFilter(fs)) without refiltering per iteration.
  Front2 archive2;
  Front3 archive3;
  auto archive_size = [&]() {
    return nk == 2 ? archive2.size() : archive3.size();
  };
  auto record = [&](std::vector<double> x, ObjectiveVector f) {
    if (nk == 2) {
      ParetoInsert(&archive2, f[0], f[1], archive2.size());
    } else {
      ParetoInsert3(&archive3, f[0], f[1], f[2], archive3.size());
    }
    xs.push_back(std::move(x));
    fs.push_back(std::move(f));
  };

  // Extreme points: unconstrained minimization of each objective.
  for (size_t k = 0; k < nk; ++k) {
    ConstrainedBest ex =
        ConstrainedMinimize(fn, static_cast<int>(k), kInfLo, kInfHi,
                            opts.inner_samples, opts.refine_steps, &rng,
                            &evals);
    if (ex.found) record(ex.x, ex.f);
  }

  // Uncertainty rectangles between adjacent Pareto points, subdivided
  // largest-first. With 3 objectives the archive is lex-sorted by
  // (f0, f1, f2) and the rectangles are its (f0, f1) projections — a
  // search heuristic (the third objective is left unconstrained in the
  // subdivision solves), not an exactness claim; the returned set is
  // still filtered to the true non-dominated subset by FinishResult.
  struct Rect {
    ObjectiveVector a, b;  // two adjacent archive points (a[0] <= b[0])
    double volume() const {
      return std::fabs((b[0] - a[0]) * (a[1] - b[1]));
    }
  };
  auto make_rects = [&]() {
    std::vector<Rect> rects;
    for (size_t i = 0; i + 1 < archive_size(); ++i) {
      if (nk == 2) {
        rects.push_back({{archive2.x[i], archive2.y[i]},
                         {archive2.x[i + 1], archive2.y[i + 1]}});
      } else {
        rects.push_back({{archive3.x[i], archive3.y[i]},
                         {archive3.x[i + 1], archive3.y[i + 1]}});
      }
    }
    return rects;
  };

  while (static_cast<int>(fs.size()) < opts.max_points) {
    auto rects = make_rects();
    if (rects.empty()) break;
    auto it = std::max_element(rects.begin(), rects.end(),
                               [](const Rect& r1, const Rect& r2) {
                                 return r1.volume() < r2.volume();
                               });
    if (it->volume() <= 1e-12) break;
    // Solve a constrained problem in the middle half of the rectangle:
    // minimize f1 subject to f0 <= midpoint. In the 2-objective
    // staircase a[1] >= b[1] always holds, so the min/max below is the
    // historical box verbatim; with 3 objectives adjacent archive
    // points need not be y-ordered and min/max keeps the box
    // well-formed.
    const double y_lo = std::min(it->a[1], it->b[1]);
    const double y_hi = std::max(it->a[1], it->b[1]);
    ObjectiveVector lo = {it->a[0], y_lo};
    ObjectiveVector hi = {0.5 * (it->a[0] + it->b[0]), y_hi};
    if (nk == 3) {
      lo.push_back(-1e300);
      hi.push_back(1e300);
    }
    auto mid = ConstrainedMinimize(fn, 1, lo, hi, opts.inner_samples,
                                   opts.refine_steps, &rng, &evals);
    if (!mid.found) {
      // Try the other half before giving up on this rectangle.
      lo[0] = 0.5 * (it->a[0] + it->b[0]);
      lo[1] = y_lo;
      hi[0] = it->b[0];
      hi[1] = y_hi;
      mid = ConstrainedMinimize(fn, 0, lo, hi, opts.inner_samples,
                                opts.refine_steps, &rng, &evals);
    }
    if (!mid.found) break;
    // Avoid duplicates.
    bool dup = false;
    for (const auto& f : fs) {
      bool same = true;
      for (size_t k = 0; k < nk; ++k) {
        if (!(std::fabs(f[k] - mid.f[k]) < 1e-12)) {
          same = false;
          break;
        }
      }
      if (same) dup = true;
    }
    if (dup) break;
    record(std::move(mid.x), std::move(mid.f));
  }
  return FinishResult(decoder, std::move(xs), std::move(fs), Seconds(t0),
                      evals);
}

}  // namespace sparkopt
