#include "moo/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace sparkopt {

namespace {

double Dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return d;
}

}  // namespace

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    int max_iters, uint64_t seed) {
  KMeansResult result;
  const int n = static_cast<int>(points.size());
  if (n == 0) return result;
  k = std::min(k, n);
  Rng rng(seed);

  // k-means++ seeding.
  result.centroids.push_back(points[rng.NextBounded(n)]);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (static_cast<int>(result.centroids.size()) < k) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], Dist2(points[i], result.centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) break;
    double target = rng.Uniform() * total;
    int chosen = n - 1;
    for (int i = 0; i < n; ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }
  k = static_cast<int>(result.centroids.size());

  result.assignment.assign(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = Dist2(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Recompute centroids.
    const size_t dim = points[0].size();
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<int> counts(k, 0);
    for (int i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < dim; ++j) sums[c][j] += points[i][j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed from the point farthest from its centroid.
        int far = 0;
        double far_d = -1.0;
        for (int i = 0; i < n; ++i) {
          const double d =
              Dist2(points[i], result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = points[far];
        changed = true;
        continue;
      }
      for (size_t j = 0; j < dim; ++j) {
        result.centroids[c][j] = sums[c][j] / counts[c];
      }
    }
    if (!changed) break;
  }

  // Representatives: nearest member per centroid.
  result.representative.assign(k, -1);
  std::vector<double> rep_d(k, std::numeric_limits<double>::infinity());
  for (int i = 0; i < n; ++i) {
    const int c = result.assignment[i];
    const double d = Dist2(points[i], result.centroids[c]);
    if (d < rep_d[c]) {
      rep_d[c] = d;
      result.representative[c] = i;
    }
  }
  // Guard: a centroid that lost all members keeps a valid representative.
  for (int c = 0; c < k; ++c) {
    if (result.representative[c] < 0) result.representative[c] = 0;
  }
  return result;
}

std::vector<int> AssignToCentroids(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::vector<double>>& centroids) {
  std::vector<int> out(points.size(), 0);
  for (size_t i = 0; i < points.size(); ++i) {
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centroids.size(); ++c) {
      const double d = Dist2(points[i], centroids[c]);
      if (d < best_d) {
        best_d = d;
        out[i] = static_cast<int>(c);
      }
    }
  }
  return out;
}

}  // namespace sparkopt
