#pragma once

#include <cstdint>
#include <vector>

/// \file kmeans.h
/// \brief Small k-means used by HMOOC's theta_c clustering (Algorithm 1,
/// line 2): similar theta_c candidates share the optimal theta_p of their
/// cluster representative.

namespace sparkopt {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x d
  std::vector<int> assignment;                 ///< point -> cluster
  /// Index (into the input points) of the member nearest each centroid:
  /// the cluster "representative".
  std::vector<int> representative;
};

/// Lloyd's algorithm with k-means++ seeding; deterministic given `seed`.
/// Empty clusters are re-seeded from the farthest point.
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    int max_iters, uint64_t seed);

/// Assigns new points to the nearest existing centroid.
std::vector<int> AssignToCentroids(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::vector<double>>& centroids);

}  // namespace sparkopt
