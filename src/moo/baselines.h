#pragma once

#include <cstdint>

#include "moo/problem.h"

/// \file baselines.h
/// \brief The SOTA MOO baselines the paper compares against (Section 6.2):
/// Weighted Sum (WS), the Evolutionary method (Evo, an NSGA-II), and
/// Progressive Frontier (PF, from UDAO). Each solves a monolithic
/// QueryObjectiveFn over the normalized decision cube and returns the
/// non-dominated solutions found. All solvers follow the objective
/// count reported by fn.num_objectives() (2 or 3); the 2-objective
/// output is bitwise-unchanged by the 3-objective support.

namespace sparkopt {

/// Weighted Sum: draw `samples` random configurations, evaluate them all,
/// and for each of `num_weights` evenly spaced weight vectors return the
/// sample minimizing the weighted sum of min-max-normalized objectives
/// (the paper's WS with 10k samples and 11 weight pairs). The returned
/// Pareto set is the non-dominated subset of the winners.
struct WsOptions {
  int samples = 10000;
  int num_weights = 11;
  uint64_t seed = 1;
};
MooRunResult SolveWeightedSum(const QueryObjectiveFn& fn,
                              const FlatProblem& decoder,
                              const WsOptions& opts);

/// Single-objective with fixed weights (SO-FW, Expt 10): one weighted-sum
/// scalarization solved by sampling; returns exactly one solution.
MooRunResult SolveSoFixedWeights(const QueryObjectiveFn& fn,
                                 const FlatProblem& decoder,
                                 const std::vector<double>& weights,
                                 int samples, uint64_t seed);

/// Evolutionary baseline: NSGA-II with simulated-binary crossover and
/// polynomial mutation (population 100, 500 evaluations by default, as
/// reported in Expt 6).
struct EvoOptions {
  int population = 100;
  int max_evaluations = 500;
  double crossover_prob = 0.9;
  double mutation_prob_scale = 1.0;  ///< per-gene prob = scale / dims
  uint64_t seed = 1;
};
MooRunResult SolveEvo(const QueryObjectiveFn& fn, const FlatProblem& decoder,
                      const EvoOptions& opts);

/// Progressive Frontier (UDAO): finds the two extreme points, then
/// repeatedly subdivides the largest uncertain rectangle by solving a
/// constrained single-objective problem in its middle (constrained
/// sampling + local refinement stands in for MOGD).
struct PfOptions {
  int max_points = 12;          ///< Pareto points to construct
  int inner_samples = 600;      ///< samples per constrained solve
  int refine_steps = 40;        ///< local-perturbation refinement steps
  uint64_t seed = 1;
};
MooRunResult SolveProgressiveFrontier(const QueryObjectiveFn& fn,
                                      const FlatProblem& decoder,
                                      const PfOptions& opts);

}  // namespace sparkopt
