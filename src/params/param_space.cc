#include "params/param_space.h"

#include <algorithm>
#include <cmath>

namespace sparkopt {

double ParamSpec::Normalize(double raw) const {
  double lo_v = lo, hi_v = hi, x = Sanitize(raw);
  if (log_scale) {
    lo_v = std::log(std::max(lo, 1e-12));
    hi_v = std::log(std::max(hi, 1e-12));
    x = std::log(std::max(x, 1e-12));
  }
  if (hi_v <= lo_v) return 0.0;
  return (x - lo_v) / (hi_v - lo_v);
}

double ParamSpec::Denormalize(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  double raw;
  if (log_scale) {
    const double lo_v = std::log(std::max(lo, 1e-12));
    const double hi_v = std::log(std::max(hi, 1e-12));
    raw = std::exp(lo_v + u * (hi_v - lo_v));
  } else {
    raw = lo + u * (hi - lo);
  }
  return Sanitize(raw);
}

double ParamSpec::Sanitize(double raw) const {
  raw = std::clamp(raw, lo, hi);
  if (type == ParamType::kInt || type == ParamType::kBool ||
      type == ParamType::kCategorical) {
    raw = std::round(raw);
    raw = std::clamp(raw, lo, hi);
  }
  return raw;
}

ParamSpace::ParamSpace(std::vector<ParamSpec> specs)
    : specs_(std::move(specs)) {}

Result<size_t> ParamSpace::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return Status::NotFound("parameter not in space: " + name);
}

ParamSpace ParamSpace::Subspace(ParamCategory category) const {
  std::vector<ParamSpec> subset;
  for (const auto& s : specs_) {
    if (s.category == category) subset.push_back(s);
  }
  return ParamSpace(std::move(subset));
}

std::vector<size_t> ParamSpace::CategoryIndices(
    ParamCategory category) const {
  std::vector<size_t> idx;
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].category == category) idx.push_back(i);
  }
  return idx;
}

std::vector<double> ParamSpace::Defaults() const {
  std::vector<double> d(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    d[i] = specs_[i].Sanitize(specs_[i].default_value);
  }
  return d;
}

std::vector<double> ParamSpace::Normalize(
    const std::vector<double>& raw) const {
  std::vector<double> u(specs_.size(), 0.0);
  const size_t n = std::min(raw.size(), specs_.size());
  for (size_t i = 0; i < n; ++i) u[i] = specs_[i].Normalize(raw[i]);
  return u;
}

std::vector<double> ParamSpace::Denormalize(
    const std::vector<double>& unit) const {
  std::vector<double> raw(specs_.size(), 0.0);
  const size_t n = std::min(unit.size(), specs_.size());
  for (size_t i = 0; i < n; ++i) raw[i] = specs_[i].Denormalize(unit[i]);
  return raw;
}

std::vector<double> ParamSpace::Sanitize(std::vector<double> raw) const {
  raw.resize(specs_.size(), 0.0);
  for (size_t i = 0; i < specs_.size(); ++i) {
    raw[i] = specs_[i].Sanitize(raw[i]);
  }
  return raw;
}

double ParamSpace::NormalizedDistance(const std::vector<double>& a,
                                      const std::vector<double>& b) const {
  const auto ua = Normalize(a);
  const auto ub = Normalize(b);
  double d = 0.0;
  for (size_t i = 0; i < ua.size(); ++i) {
    d += (ua[i] - ub[i]) * (ua[i] - ub[i]);
  }
  return std::sqrt(d);
}

}  // namespace sparkopt
