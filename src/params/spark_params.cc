#include "params/spark_params.h"

namespace sparkopt {

namespace {

ParamSpec Spec(const char* name, ParamType type, ParamCategory cat,
               double lo, double hi, bool log_scale, double def) {
  ParamSpec s;
  s.name = name;
  s.type = type;
  s.category = cat;
  s.lo = lo;
  s.hi = hi;
  s.log_scale = log_scale;
  s.default_value = def;
  return s;
}

ParamSpace BuildSparkSpace() {
  using PT = ParamType;
  using PC = ParamCategory;
  std::vector<ParamSpec> specs;
  specs.reserve(kNumSparkParams);
  // theta_c -------------------------------------------------------------
  specs.push_back(Spec("spark.executor.cores", PT::kInt, PC::kContext,
                       1, 8, false, 4));
  specs.push_back(Spec("spark.executor.memory", PT::kInt, PC::kContext,
                       1, 32, true, 8));
  specs.push_back(Spec("spark.executor.instances", PT::kInt, PC::kContext,
                       2, 16, false, 4));
  specs.push_back(Spec("spark.default.parallelism", PT::kInt, PC::kContext,
                       8, 512, true, 64));
  specs.push_back(Spec("spark.reducer.maxSizeInFlight", PT::kInt,
                       PC::kContext, 12, 192, true, 48));
  specs.push_back(Spec("spark.shuffle.sort.bypassMergeThreshold", PT::kInt,
                       PC::kContext, 50, 800, false, 200));
  specs.push_back(Spec("spark.shuffle.compress", PT::kBool, PC::kContext,
                       0, 1, false, 1));
  specs.push_back(Spec("spark.memory.fraction", PT::kFloat, PC::kContext,
                       0.4, 0.9, false, 0.6));
  // theta_p -------------------------------------------------------------
  specs.push_back(Spec("spark.sql.adaptive.advisoryPartitionSizeInBytes",
                       PT::kFloat, PC::kPlan, 8, 256, true, 64));
  specs.push_back(
      Spec("spark.sql.adaptive.nonEmptyPartitionRatioForBroadcastJoin",
           PT::kFloat, PC::kPlan, 0.0, 1.0, false, 0.2));
  specs.push_back(
      Spec("spark.sql.adaptive.maxShuffledHashJoinLocalMapThreshold",
           PT::kFloat, PC::kPlan, 0, 512, false, 0));
  specs.push_back(Spec("spark.sql.adaptive.autoBroadcastJoinThreshold",
                       PT::kFloat, PC::kPlan, 0, 256, false, 10));
  specs.push_back(Spec("spark.sql.shuffle.partitions", PT::kInt, PC::kPlan,
                       8, 1024, true, 200));
  specs.push_back(
      Spec("spark.sql.adaptive.skewJoin.skewedPartitionThresholdInBytes",
           PT::kFloat, PC::kPlan, 32, 1024, true, 256));
  specs.push_back(Spec("spark.sql.adaptive.skewJoin.skewedPartitionFactor",
                       PT::kFloat, PC::kPlan, 2, 10, false, 5));
  specs.push_back(Spec("spark.sql.files.maxPartitionBytes", PT::kFloat,
                       PC::kPlan, 16, 512, true, 128));
  specs.push_back(Spec("spark.sql.files.openCostInBytes", PT::kFloat,
                       PC::kPlan, 0.5, 16, true, 4));
  // theta_s -------------------------------------------------------------
  specs.push_back(
      Spec("spark.sql.adaptive.rebalancePartitionsSmallPartitionFactor",
           PT::kFloat, PC::kStage, 0.1, 0.5, false, 0.2));
  specs.push_back(
      Spec("spark.sql.adaptive.coalescePartitions.minPartitionSize",
           PT::kFloat, PC::kStage, 1, 64, true, 1));
  return ParamSpace(std::move(specs));
}

}  // namespace

const ParamSpace& SparkParamSpace() {
  static const ParamSpace space = BuildSparkSpace();
  return space;
}

namespace {
double At(const std::vector<double>& conf, size_t i) {
  return i < conf.size() ? conf[i] : SparkParamSpace().spec(i).default_value;
}
}  // namespace

ContextParams DecodeContext(const std::vector<double>& conf) {
  ContextParams c;
  c.executor_cores = static_cast<int>(At(conf, kExecutorCores));
  c.executor_memory_gb = At(conf, kExecutorMemoryGb);
  c.executor_instances = static_cast<int>(At(conf, kExecutorInstances));
  c.default_parallelism = static_cast<int>(At(conf, kDefaultParallelism));
  c.reducer_max_size_in_flight_mb = At(conf, kReducerMaxSizeInFlightMb);
  c.shuffle_bypass_merge_threshold =
      static_cast<int>(At(conf, kShuffleBypassMergeThreshold));
  c.shuffle_compress = At(conf, kShuffleCompress) >= 0.5;
  c.memory_fraction = At(conf, kMemoryFraction);
  return c;
}

PlanParams DecodePlan(const std::vector<double>& conf) {
  PlanParams p;
  p.advisory_partition_size_mb = At(conf, kAdvisoryPartitionSizeMb);
  p.non_empty_partition_ratio = At(conf, kNonEmptyPartitionRatio);
  p.shuffled_hash_join_threshold_mb =
      At(conf, kShuffledHashJoinThresholdMb);
  p.broadcast_join_threshold_mb = At(conf, kBroadcastJoinThresholdMb);
  p.shuffle_partitions = static_cast<int>(At(conf, kShufflePartitions));
  p.skewed_partition_threshold_mb = At(conf, kSkewedPartitionThresholdMb);
  p.skewed_partition_factor = At(conf, kSkewedPartitionFactor);
  p.max_partition_bytes_mb = At(conf, kMaxPartitionBytesMb);
  p.file_open_cost_mb = At(conf, kFileOpenCostMb);
  return p;
}

StageParams DecodeStage(const std::vector<double>& conf) {
  StageParams s;
  s.rebalance_small_factor = At(conf, kRebalanceSmallFactor);
  s.coalesce_min_partition_size_mb = At(conf, kCoalesceMinPartitionSizeMb);
  return s;
}

namespace {
void EnsureSize(std::vector<double>* conf) {
  if (conf->size() < kNumSparkParams) {
    auto defaults = DefaultSparkConfig();
    for (size_t i = conf->size(); i < kNumSparkParams; ++i) {
      conf->push_back(defaults[i]);
    }
  }
}
}  // namespace

void EncodeContext(const ContextParams& c, std::vector<double>* conf) {
  EnsureSize(conf);
  (*conf)[kExecutorCores] = c.executor_cores;
  (*conf)[kExecutorMemoryGb] = c.executor_memory_gb;
  (*conf)[kExecutorInstances] = c.executor_instances;
  (*conf)[kDefaultParallelism] = c.default_parallelism;
  (*conf)[kReducerMaxSizeInFlightMb] = c.reducer_max_size_in_flight_mb;
  (*conf)[kShuffleBypassMergeThreshold] = c.shuffle_bypass_merge_threshold;
  (*conf)[kShuffleCompress] = c.shuffle_compress ? 1.0 : 0.0;
  (*conf)[kMemoryFraction] = c.memory_fraction;
}

void EncodePlan(const PlanParams& p, std::vector<double>* conf) {
  EnsureSize(conf);
  (*conf)[kAdvisoryPartitionSizeMb] = p.advisory_partition_size_mb;
  (*conf)[kNonEmptyPartitionRatio] = p.non_empty_partition_ratio;
  (*conf)[kShuffledHashJoinThresholdMb] = p.shuffled_hash_join_threshold_mb;
  (*conf)[kBroadcastJoinThresholdMb] = p.broadcast_join_threshold_mb;
  (*conf)[kShufflePartitions] = p.shuffle_partitions;
  (*conf)[kSkewedPartitionThresholdMb] = p.skewed_partition_threshold_mb;
  (*conf)[kSkewedPartitionFactor] = p.skewed_partition_factor;
  (*conf)[kMaxPartitionBytesMb] = p.max_partition_bytes_mb;
  (*conf)[kFileOpenCostMb] = p.file_open_cost_mb;
}

void EncodeStage(const StageParams& s, std::vector<double>* conf) {
  EnsureSize(conf);
  (*conf)[kRebalanceSmallFactor] = s.rebalance_small_factor;
  (*conf)[kCoalesceMinPartitionSizeMb] = s.coalesce_min_partition_size_mb;
}

std::vector<double> DefaultSparkConfig() {
  return SparkParamSpace().Defaults();
}

}  // namespace sparkopt
