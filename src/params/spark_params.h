#pragma once

#include <vector>

#include "params/param_space.h"

/// \file spark_params.h
/// \brief The concrete 19-parameter Spark tuning space used in the paper
/// (Table 6): 8 context parameters (theta_c), 9 logical-query-plan
/// parameters (theta_p), and 2 query-stage parameters (theta_s).
///
/// Domains follow Spark documentation ranges scaled to the simulated
/// 6-node cluster; defaults are Spark 3.5 defaults (the paper's baseline
/// configuration).

namespace sparkopt {

/// Well-known indices into the full 19-dim space, in declaration order.
enum SparkParamIndex : size_t {
  // theta_c
  kExecutorCores = 0,          ///< k1 spark.executor.cores
  kExecutorMemoryGb,           ///< k2 spark.executor.memory (GB)
  kExecutorInstances,          ///< k3 spark.executor.instances
  kDefaultParallelism,         ///< k4 spark.default.parallelism
  kReducerMaxSizeInFlightMb,   ///< k5 spark.reducer.maxSizeInFlight (MB)
  kShuffleBypassMergeThreshold,///< k6 spark.shuffle.sort.bypassMergeThreshold
  kShuffleCompress,            ///< k7 spark.shuffle.compress (bool)
  kMemoryFraction,             ///< k8 spark.memory.fraction
  // theta_p
  kAdvisoryPartitionSizeMb,    ///< s1 advisoryPartitionSizeInBytes (MB)
  kNonEmptyPartitionRatio,     ///< s2 nonEmptyPartitionRatioForBroadcastJoin
  kShuffledHashJoinThresholdMb,///< s3 maxShuffledHashJoinLocalMapThreshold
  kBroadcastJoinThresholdMb,   ///< s4 autoBroadcastJoinThreshold (MB)
  kShufflePartitions,          ///< s5 spark.sql.shuffle.partitions
  kSkewedPartitionThresholdMb, ///< s6 skewJoin.skewedPartitionThreshold (MB)
  kSkewedPartitionFactor,      ///< s7 skewJoin.skewedPartitionFactor
  kMaxPartitionBytesMb,        ///< s8 files.maxPartitionBytes (MB)
  kFileOpenCostMb,             ///< s9 files.openCostInBytes (MB)
  // theta_s
  kRebalanceSmallFactor,       ///< s10 rebalance smallPartitionFactor
  kCoalesceMinPartitionSizeMb, ///< s11 coalesce minPartitionSize (MB)
  kNumSparkParams
};

/// Builds the full 19-parameter space (theta_c ++ theta_p ++ theta_s).
const ParamSpace& SparkParamSpace();

/// \brief Decoded view of the 8 context parameters.
struct ContextParams {
  int executor_cores = 1;
  double executor_memory_gb = 1.0;
  int executor_instances = 2;
  int default_parallelism = 64;
  double reducer_max_size_in_flight_mb = 48.0;
  int shuffle_bypass_merge_threshold = 200;
  bool shuffle_compress = true;
  double memory_fraction = 0.6;

  /// Total cores k1 * k3 available to the query.
  int TotalCores() const { return executor_cores * executor_instances; }
  /// Memory available per concurrently running task, in MB.
  double MemoryPerTaskMb() const {
    return executor_memory_gb * 1024.0 * memory_fraction /
           static_cast<double>(executor_cores);
  }
};

/// \brief Decoded view of the 9 logical-plan parameters.
struct PlanParams {
  double advisory_partition_size_mb = 64.0;
  double non_empty_partition_ratio = 0.2;
  double shuffled_hash_join_threshold_mb = 0.0;
  double broadcast_join_threshold_mb = 10.0;
  int shuffle_partitions = 200;
  double skewed_partition_threshold_mb = 256.0;
  double skewed_partition_factor = 5.0;
  double max_partition_bytes_mb = 128.0;
  double file_open_cost_mb = 4.0;
};

/// \brief Decoded view of the 2 query-stage parameters.
struct StageParams {
  double rebalance_small_factor = 0.2;
  double coalesce_min_partition_size_mb = 1.0;
};

/// Decoders from a full 19-dim raw configuration vector.
ContextParams DecodeContext(const std::vector<double>& conf);
PlanParams DecodePlan(const std::vector<double>& conf);
StageParams DecodeStage(const std::vector<double>& conf);

/// Encoders writing typed params back into a full configuration vector
/// (vector is resized to kNumSparkParams if needed).
void EncodeContext(const ContextParams& c, std::vector<double>* conf);
void EncodePlan(const PlanParams& p, std::vector<double>* conf);
void EncodeStage(const StageParams& s, std::vector<double>* conf);

/// The Spark-default configuration (the paper's baseline).
std::vector<double> DefaultSparkConfig();

}  // namespace sparkopt
