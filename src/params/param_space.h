#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

/// \file param_space.h
/// \brief Parameter space definitions.
///
/// A ParamSpec describes one tunable Spark parameter (domain, type, scale);
/// a ParamSpace is an ordered list of specs. Configurations are stored as
/// raw double vectors aligned with a space; helpers convert between raw
/// values and the normalized [0,1] cube used by samplers, clustering, and
/// model features.

namespace sparkopt {

/// Value type of a parameter.
enum class ParamType {
  kInt,         ///< integer-valued (rounded after denormalization)
  kFloat,       ///< continuous
  kBool,        ///< {0, 1}
  kCategorical  ///< integer codes 0..n-1 without metric structure
};

/// Which tuning granularity a parameter belongs to (paper Table 1).
enum class ParamCategory {
  kContext,    ///< theta_c: set once per query at submission
  kPlan,       ///< theta_p: per collapsed-logical-plan transformation
  kStage       ///< theta_s: per query stage
};

/// \brief Descriptor of one tunable parameter.
struct ParamSpec {
  std::string name;
  ParamType type = ParamType::kFloat;
  ParamCategory category = ParamCategory::kContext;
  double lo = 0.0;          ///< inclusive lower bound (raw scale)
  double hi = 1.0;          ///< inclusive upper bound (raw scale)
  bool log_scale = false;   ///< normalize in log space (byte sizes etc.)
  double default_value = 0.0;

  /// Maps a raw value into [0,1].
  double Normalize(double raw) const;
  /// Maps u in [0,1] back to a valid raw value (rounds ints/bools).
  double Denormalize(double u) const;
  /// Clamps + rounds a raw value to the domain.
  double Sanitize(double raw) const;
};

/// \brief An ordered, named collection of parameters.
class ParamSpace {
 public:
  ParamSpace() = default;
  explicit ParamSpace(std::vector<ParamSpec> specs);

  size_t size() const { return specs_.size(); }
  const ParamSpec& spec(size_t i) const { return specs_[i]; }
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// Index of a parameter by name, or error.
  Result<size_t> IndexOf(const std::string& name) const;

  /// The subset of this space in the given category, preserving order.
  ParamSpace Subspace(ParamCategory category) const;

  /// Indices into this space of the parameters in `category`.
  std::vector<size_t> CategoryIndices(ParamCategory category) const;

  /// Default configuration (raw values).
  std::vector<double> Defaults() const;

  /// Normalizes a raw configuration into the unit cube.
  std::vector<double> Normalize(const std::vector<double>& raw) const;
  /// Denormalizes a unit-cube point into a valid raw configuration.
  std::vector<double> Denormalize(const std::vector<double>& unit) const;
  /// Clamps + rounds every coordinate to its domain.
  std::vector<double> Sanitize(std::vector<double> raw) const;

  /// Euclidean distance between two configurations in normalized space.
  double NormalizedDistance(const std::vector<double>& a,
                            const std::vector<double>& b) const;

 private:
  std::vector<ParamSpec> specs_;
};

}  // namespace sparkopt
