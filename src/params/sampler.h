#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "params/param_space.h"

/// \file sampler.h
/// \brief Configuration samplers over a ParamSpace.
///
/// The paper collects training traces with Latin Hypercube Sampling and
/// initializes HMOOC's theta_c candidates by random sampling or grid
/// search; all three strategies are provided here. Samplers return raw
/// (denormalized, sanitized) configuration vectors.

namespace sparkopt {

/// Uniform i.i.d. samples in the (log-scaled where applicable) unit cube.
/// `margin` shrinks the sampled range to [margin, 1-margin] per dimension
/// — the paper's search-range refinement that avoids extreme parameter
/// values where model predictions are least reliable (Section 6.3).
std::vector<std::vector<double>> SampleUniform(const ParamSpace& space,
                                               size_t n, Rng* rng,
                                               double margin = 0.0);

/// \brief Latin Hypercube Sampling (McKay et al.): each dimension's range
/// is split into n strata and each stratum is hit exactly once, with the
/// per-dimension stratum order shuffled independently. `margin` as above.
std::vector<std::vector<double>> SampleLatinHypercube(const ParamSpace& space,
                                                      size_t n, Rng* rng,
                                                      double margin = 0.0);

/// \brief Full-factorial grid with `levels_per_dim` evenly spaced levels
/// in each dimension. The total count is levels^d; callers cap it via
/// `max_points` (excess combinations are dropped round-robin).
std::vector<std::vector<double>> SampleGrid(const ParamSpace& space,
                                            size_t levels_per_dim,
                                            size_t max_points);

/// \brief Gaussian perturbation of a configuration in normalized space
/// (sigma per dimension), sanitized back to the domain. Used for local
/// search and evolutionary mutation.
std::vector<double> Perturb(const ParamSpace& space,
                            const std::vector<double>& conf, double sigma,
                            Rng* rng);

/// \brief Single-point crossover of two raw configurations (used by
/// HMOOC's theta_c enrichment, Appendix C.1): child takes a[0..cut) and
/// b[cut..d). Returns both children.
std::pair<std::vector<double>, std::vector<double>> CrossoverOnePoint(
    const std::vector<double>& a, const std::vector<double>& b, size_t cut);

}  // namespace sparkopt
