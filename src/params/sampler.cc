#include "params/sampler.h"

#include <algorithm>
#include <cmath>

namespace sparkopt {

namespace {
double ApplyMargin(double u, double margin) {
  return margin + u * (1.0 - 2.0 * margin);
}
}  // namespace

std::vector<std::vector<double>> SampleUniform(const ParamSpace& space,
                                               size_t n, Rng* rng,
                                               double margin) {
  std::vector<std::vector<double>> out;
  out.reserve(n);
  const size_t d = space.size();
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> u(d);
    for (size_t j = 0; j < d; ++j) {
      u[j] = ApplyMargin(rng->Uniform(), margin);
    }
    out.push_back(space.Denormalize(u));
  }
  return out;
}

std::vector<std::vector<double>> SampleLatinHypercube(const ParamSpace& space,
                                                      size_t n, Rng* rng,
                                                      double margin) {
  const size_t d = space.size();
  std::vector<std::vector<double>> unit(n, std::vector<double>(d));
  for (size_t j = 0; j < d; ++j) {
    auto perm = rng->Permutation(static_cast<int>(n));
    for (size_t i = 0; i < n; ++i) {
      const double stratum = static_cast<double>(perm[i]);
      unit[i][j] = ApplyMargin(
          (stratum + rng->Uniform()) / static_cast<double>(n), margin);
    }
  }
  std::vector<std::vector<double>> out;
  out.reserve(n);
  for (auto& u : unit) out.push_back(space.Denormalize(u));
  return out;
}

std::vector<std::vector<double>> SampleGrid(const ParamSpace& space,
                                            size_t levels_per_dim,
                                            size_t max_points) {
  const size_t d = space.size();
  if (levels_per_dim == 0 || d == 0) return {};
  // Total = levels^d, enumerated in mixed radix; stop at max_points.
  std::vector<std::vector<double>> out;
  std::vector<size_t> digits(d, 0);
  while (out.size() < max_points) {
    std::vector<double> u(d);
    for (size_t j = 0; j < d; ++j) {
      u[j] = levels_per_dim == 1
                 ? 0.5
                 : static_cast<double>(digits[j]) /
                       static_cast<double>(levels_per_dim - 1);
    }
    out.push_back(space.Denormalize(u));
    // Increment mixed-radix counter.
    size_t j = 0;
    while (j < d) {
      if (++digits[j] < levels_per_dim) break;
      digits[j] = 0;
      ++j;
    }
    if (j == d) break;  // wrapped around: full grid enumerated
  }
  return out;
}

std::vector<double> Perturb(const ParamSpace& space,
                            const std::vector<double>& conf, double sigma,
                            Rng* rng) {
  auto u = space.Normalize(conf);
  for (double& x : u) {
    x = std::clamp(x + rng->Normal(0.0, sigma), 0.0, 1.0);
  }
  return space.Denormalize(u);
}

std::pair<std::vector<double>, std::vector<double>> CrossoverOnePoint(
    const std::vector<double>& a, const std::vector<double>& b, size_t cut) {
  const size_t d = std::min(a.size(), b.size());
  cut = std::min(cut, d);
  std::vector<double> c1 = a;
  std::vector<double> c2 = b;
  for (size_t i = cut; i < d; ++i) {
    c1[i] = b[i];
    c2[i] = a[i];
  }
  return {std::move(c1), std::move(c2)};
}

}  // namespace sparkopt
