#include "plan/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {

namespace {

double MaxChildRows(const LogicalPlan& plan, const LogicalOperator& op,
                    bool truth) {
  double m = 0.0;
  for (int c : op.children) {
    const auto& ch = plan.op(c);
    m = std::max(m, truth ? ch.true_rows : ch.est_rows);
  }
  return m;
}

double SumChildRows(const LogicalPlan& plan, const LogicalOperator& op,
                    bool truth) {
  double s = 0.0;
  for (int c : op.children) {
    const auto& ch = plan.op(c);
    s += truth ? ch.true_rows : ch.est_rows;
  }
  return s;
}

}  // namespace

int JoinDepth(const LogicalPlan& plan, int id) {
  const auto& op = plan.op(id);
  int depth = op.type == OpType::kJoin ? 1 : 0;
  int child_max = 0;
  for (int c : op.children) {
    child_max = std::max(child_max, JoinDepth(plan, c));
  }
  return depth + child_max;
}

Status AnnotateCardinalities(const std::vector<TableStats>& catalog,
                             const CboErrorModel& error, LogicalPlan* plan) {
  for (int id : plan->TopologicalOrder()) {
    auto& op = plan->op(id);
    // Per-operator deterministic error stream.
    Rng rng(HashCombine(error.seed, 0x5137D00DULL + 31 * id));

    double rows_true = 0.0;
    double rows_est = 0.0;
    switch (op.type) {
      case OpType::kScan: {
        if (op.table_id < 0 ||
            op.table_id >= static_cast<int>(catalog.size())) {
          return Status::InvalidArgument("scan references unknown table");
        }
        const double base = catalog[op.table_id].rows;
        rows_true = base * op.selectivity;
        // Base-table stats are accurate; pushed-down predicates carry a
        // modest selectivity error.
        const double sel_err = rng.LogNormal(0.0, error.filter_sigma *
                                                      (op.selectivity < 1.0));
        rows_est = base * std::min(1.0, op.selectivity * sel_err);
        break;
      }
      case OpType::kFilter: {
        const double in_t = MaxChildRows(*plan, op, true);
        const double in_e = MaxChildRows(*plan, op, false);
        const double sel_err = rng.LogNormal(0.0, error.filter_sigma);
        rows_true = in_t * op.selectivity;
        rows_est = in_e * std::min(1.0, op.selectivity * sel_err);
        break;
      }
      case OpType::kProject:
      case OpType::kSort: {
        rows_true = MaxChildRows(*plan, op, true);
        rows_est = MaxChildRows(*plan, op, false);
        break;
      }
      case OpType::kJoin: {
        const double in_t = MaxChildRows(*plan, op, true);
        const double in_e = MaxChildRows(*plan, op, false);
        rows_true = in_t * op.cardinality_factor;
        const double err =
            error.join_bias * rng.LogNormal(0.0, error.sigma_per_join);
        rows_est = in_e * op.cardinality_factor * err;
        break;
      }
      case OpType::kAggregate: {
        const double in_t = MaxChildRows(*plan, op, true);
        const double in_e = MaxChildRows(*plan, op, false);
        const double err = rng.LogNormal(0.0, error.filter_sigma);
        rows_true = in_t * op.cardinality_factor;
        rows_est = in_e * op.cardinality_factor * err;
        break;
      }
      case OpType::kLimit: {
        rows_true = std::min(MaxChildRows(*plan, op, true),
                             op.cardinality_factor);
        rows_est = std::min(MaxChildRows(*plan, op, false),
                            op.cardinality_factor);
        break;
      }
      case OpType::kUnion: {
        rows_true = SumChildRows(*plan, op, true);
        rows_est = SumChildRows(*plan, op, false);
        break;
      }
      default:
        return Status::Unimplemented("cardinality for operator type");
    }
    op.true_rows = std::max(rows_true, 1.0);
    op.est_rows = std::max(rows_est, 1.0);
    op.true_bytes = op.true_rows * op.out_row_bytes;
    op.est_bytes = op.est_rows * op.out_row_bytes;
  }
  return Status::OK();
}

}  // namespace sparkopt
