#pragma once

#include <string>
#include <vector>

#include "common/status.h"

/// \file logical_plan.h
/// \brief Logical query plans as operator DAGs, plus the compile-time
/// "subQ" decomposition from Section 4.1 of the paper: a subQ is the group
/// of logical operators that will correspond to one query stage once the
/// plan is physically planned.

namespace sparkopt {

/// Logical operator kinds. The set mirrors what the paper's plans contain
/// (TPC-H/TPC-DS join trees with filters, projections, aggregates, sorts).
enum class OpType {
  kScan = 0,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kUnion,
  kNumOpTypes
};

const char* OpTypeName(OpType t);

/// Statistics of one base table (set by the workload generators).
struct TableStats {
  std::string name;
  double rows = 0.0;
  double row_bytes = 64.0;
  /// Zipf-like key-skew factor in [0,1]: 0 = uniform partition sizes,
  /// 1 = heavily skewed. Drives the beta non-decision features and the
  /// skew-join rules (s6/s7).
  double skew = 0.0;
};

/// \brief One logical operator. Cardinality fields are filled by
/// CardinalityModel: `true_*` is what execution will observe, `est_*` is
/// what the cost-based optimizer believes at compile time.
struct LogicalOperator {
  int id = -1;
  OpType type = OpType::kScan;
  std::vector<int> children;  ///< ids of input operators

  int table_id = -1;          ///< for kScan: index into the catalog
  double selectivity = 1.0;   ///< kFilter: fraction of rows kept
  /// kJoin: output rows = factor * max(child rows); kAggregate: output
  /// rows = factor * input rows (group-count ratio); kLimit: absolute rows.
  double cardinality_factor = 1.0;
  double out_row_bytes = 64.0;  ///< output row width in bytes
  /// kJoin / kAggregate: whether the operator repartitions its input
  /// (false when grouping keys match the incoming partitioning, in which
  /// case it pipelines into the child's stage).
  bool requires_shuffle = false;
  /// Key-skew factor of the shuffle this operator induces, in [0,1].
  double shuffle_skew = 0.0;
  /// Predicate / expression tokens, hashed into model features (the
  /// stand-in for the paper's word-embedding predicate channel).
  std::vector<std::string> predicate_tokens;

  // ---- filled by CardinalityModel ----
  double true_rows = 0.0;
  double true_bytes = 0.0;
  double est_rows = 0.0;
  double est_bytes = 0.0;
};

/// \brief A compile-time stage: group of logical operators mapping to one
/// query stage (Section 4.1). subQs form a DAG via `deps`.
struct SubQuery {
  int id = -1;
  std::vector<int> op_ids;   ///< member operators, topological order
  std::vector<int> deps;     ///< upstream subQ ids (data dependencies)
  int root_op = -1;          ///< last operator in the group
  bool has_scan = false;     ///< reads base tables (leaf stage)
  bool has_join = false;     ///< contains the probe side of a join
};

/// \brief A logical plan: an operator DAG with a single root.
///
/// Operators are stored by id; the structure is immutable after Build()
/// except for cardinality annotations.
class LogicalPlan {
 public:
  LogicalPlan() = default;

  /// Adds an operator; its `id` is assigned and returned.
  int AddOperator(LogicalOperator op);

  LogicalOperator& op(int id) { return ops_[id]; }
  const LogicalOperator& op(int id) const { return ops_[id]; }
  size_t num_ops() const { return ops_.size(); }
  int root() const { return root_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Finalizes the DAG: validates child references, finds the root
  /// (unique op that is no one's child), computes the topological order.
  Status Build();

  /// Operator ids in topological (children-first) order.
  const std::vector<int>& TopologicalOrder() const { return topo_; }

  /// Ids of operators that consume op `id` (filled by Build()).
  const std::vector<int>& Parents(int id) const { return parents_[id]; }

  /// \brief Decomposes the plan into subQs (compile-time stages): a new
  /// subQ starts at every scan and at every shuffle-inducing operator;
  /// other operators pipeline into their child's subQ. Requires Build().
  std::vector<SubQuery> DecomposeSubQueries() const;

  /// Number of joins in the plan (used by workload stats and benches).
  int CountOps(OpType t) const;

 private:
  std::string name_;
  std::vector<LogicalOperator> ops_;
  std::vector<std::vector<int>> parents_;
  std::vector<int> topo_;
  int root_ = -1;
};

}  // namespace sparkopt
