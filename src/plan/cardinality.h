#pragma once

#include <vector>

#include "common/status.h"
#include "plan/logical_plan.h"

/// \file cardinality.h
/// \brief Cardinality annotation: true cardinalities (what execution will
/// observe) and cost-based-optimizer estimates (what compile-time
/// optimization must work with).
///
/// The CBO estimate follows the classical q-error model: the estimate is
/// the true value perturbed by a log-normal factor whose variance grows
/// with the operator's join depth, with a systematic underestimation bias
/// for joins (Ioannidis-style error propagation). This reproduces the
/// compile-time/runtime information gap that motivates the paper's
/// adaptive runtime optimization (e.g. the mis-chosen broadcast in
/// Figure 3(b)).

namespace sparkopt {

/// Knobs of the estimation-error model.
struct CboErrorModel {
  /// Log-stddev of the multiplicative error added per join level.
  double sigma_per_join = 0.35;
  /// Multiplicative bias applied per join level (< 1 = underestimation).
  double join_bias = 0.86;
  /// Log-stddev of the error on filter selectivities.
  double filter_sigma = 0.25;
  /// Seed component so each query gets a stable, distinct error draw.
  uint64_t seed = 1;
};

/// \brief Computes `true_rows`/`true_bytes` and `est_rows`/`est_bytes`
/// bottom-up for every operator in `plan`.
///
/// True cardinalities derive from the catalog and the operators'
/// selectivity / cardinality_factor annotations. Estimates replay the same
/// computation on top of error-perturbed selectivities, so errors compound
/// with depth exactly as in a real CBO.
Status AnnotateCardinalities(const std::vector<TableStats>& catalog,
                             const CboErrorModel& error, LogicalPlan* plan);

/// Number of joins at or below operator `id` (its "join depth"), used by
/// the error model and by plan features.
int JoinDepth(const LogicalPlan& plan, int id);

}  // namespace sparkopt
