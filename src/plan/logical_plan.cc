#include "plan/logical_plan.h"

#include <algorithm>

namespace sparkopt {

const char* OpTypeName(OpType t) {
  switch (t) {
    case OpType::kScan: return "Scan";
    case OpType::kFilter: return "Filter";
    case OpType::kProject: return "Project";
    case OpType::kJoin: return "Join";
    case OpType::kAggregate: return "Aggregate";
    case OpType::kSort: return "Sort";
    case OpType::kLimit: return "Limit";
    case OpType::kUnion: return "Union";
    default: return "?";
  }
}

int LogicalPlan::AddOperator(LogicalOperator op) {
  op.id = static_cast<int>(ops_.size());
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

Status LogicalPlan::Build() {
  const int n = static_cast<int>(ops_.size());
  if (n == 0) return Status::InvalidArgument("empty plan");
  parents_.assign(n, {});
  for (const auto& op : ops_) {
    for (int c : op.children) {
      if (c < 0 || c >= n) {
        return Status::InvalidArgument("operator " + std::to_string(op.id) +
                                       " references invalid child " +
                                       std::to_string(c));
      }
      if (c == op.id) {
        return Status::InvalidArgument("operator is its own child");
      }
      parents_[c].push_back(op.id);
    }
  }
  // Root: the unique operator with no parents.
  root_ = -1;
  for (int i = 0; i < n; ++i) {
    if (parents_[i].empty()) {
      if (root_ != -1) {
        return Status::InvalidArgument("plan has multiple roots");
      }
      root_ = i;
    }
  }
  if (root_ == -1) return Status::InvalidArgument("plan has a cycle (no root)");

  // Kahn topological sort (children before parents).
  std::vector<int> in_deg(n, 0);
  for (const auto& op : ops_) {
    in_deg[op.id] = static_cast<int>(op.children.size());
  }
  topo_.clear();
  std::vector<int> frontier;
  for (int i = 0; i < n; ++i) {
    if (in_deg[i] == 0) frontier.push_back(i);
  }
  // Deterministic order: smallest id first.
  std::sort(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.erase(frontier.begin());
    topo_.push_back(u);
    for (int p : parents_[u]) {
      if (--in_deg[p] == 0) {
        frontier.insert(
            std::upper_bound(frontier.begin(), frontier.end(), p), p);
      }
    }
  }
  if (static_cast<int>(topo_.size()) != n) {
    return Status::InvalidArgument("plan has a cycle");
  }
  return Status::OK();
}

std::vector<SubQuery> LogicalPlan::DecomposeSubQueries() const {
  std::vector<int> subq_of(ops_.size(), -1);
  std::vector<SubQuery> subqs;

  auto starts_new_subq = [](const LogicalOperator& op) {
    return op.type == OpType::kScan || op.requires_shuffle;
  };

  for (int id : topo_) {
    const auto& op = ops_[id];
    if (starts_new_subq(op) || op.children.empty()) {
      SubQuery sq;
      sq.id = static_cast<int>(subqs.size());
      subqs.push_back(sq);
      subq_of[id] = subqs.back().id;
    } else {
      // Pipeline into the subQ of the first (primary) child. For
      // multi-child non-shuffle operators the primary child carries the
      // partitioning; other children contribute dependencies below.
      subq_of[id] = subq_of[op.children.front()];
    }
    auto& sq = subqs[subq_of[id]];
    sq.op_ids.push_back(id);
    sq.root_op = id;
    if (op.type == OpType::kScan) sq.has_scan = true;
    if (op.type == OpType::kJoin) sq.has_join = true;
  }

  // Dependencies: subQ A depends on subQ B when some op in A has a child
  // in B (A != B).
  for (const auto& op : ops_) {
    const int a = subq_of[op.id];
    for (int c : op.children) {
      const int b = subq_of[c];
      if (a != b) {
        auto& deps = subqs[a].deps;
        if (std::find(deps.begin(), deps.end(), b) == deps.end()) {
          deps.push_back(b);
        }
      }
    }
  }
  for (auto& sq : subqs) std::sort(sq.deps.begin(), sq.deps.end());
  return subqs;
}

int LogicalPlan::CountOps(OpType t) const {
  int n = 0;
  for (const auto& op : ops_) {
    if (op.type == t) ++n;
  }
  return n;
}

}  // namespace sparkopt
