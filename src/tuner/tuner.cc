#include "tuner/tuner.h"

#include <algorithm>
#include <chrono>

#include "analysis/invariants.h"
#include "common/rng.h"
#include "moo/baselines.h"
#include "obs/trace.h"

namespace sparkopt {

const char* TuningMethodName(TuningMethod m) {
  switch (m) {
    case TuningMethod::kDefault: return "Default";
    case TuningMethod::kHmooc3: return "HMOOC3";
    case TuningMethod::kHmooc3Plus: return "HMOOC3+";
    case TuningMethod::kMoWs: return "MO-WS";
    case TuningMethod::kSoFixedWeights: return "SO-FW";
    case TuningMethod::kEvoQuery: return "Evo";
    case TuningMethod::kPfQuery: return "PF";
  }
  return "?";
}

Result<TuningOutcome> Tuner::RunWithConfig(const Query& query,
                                           const std::vector<double>& conf,
                                           bool runtime_opt) const {
  obs::Span span("tuner.run_with_config");
  TuningOutcome out;
  out.method = TuningMethod::kDefault;
  out.query_name = query.name;
  out.chosen.conf = conf;

  Simulator sim(opts_.cluster, opts_.cost_params, opts_.prices);
  AqeDriver driver(&query.plan, &sim);
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);

  if (runtime_opt) {
    SubQEvaluator eval(&query, opts_.cluster, opts_.cost_params,
                       opts_.prices, opts_.eval_cache_capacity);
    RuntimeOptimizerOptions ro = opts_.runtime;
    ro.preference = opts_.preference;
    if (opts_.num_threads >= 0) ro.num_threads = opts_.num_threads;
    RuntimeOptimizer hooks(&eval, ro);
    hooks.set_context(tc);
    auto exec = driver.Run(tc, {tp}, {ts}, &hooks, query.seed);
    if (!exec.ok()) return exec.status();
    out.execution = std::move(*exec);
    out.runtime_stats = hooks.stats();
    out.runtime_overhead_seconds = hooks.overhead_seconds();
  } else {
    auto exec = driver.Run(tc, {tp}, {ts}, nullptr, query.seed);
    if (!exec.ok()) return exec.status();
    out.execution = std::move(*exec);
  }
  return out;
}

Result<TuningOutcome> Tuner::Run(const Query& query,
                                 TuningMethod method) const {
  obs::Span span("tuner.run");
  obs::Count("tuner.queries");
#ifdef SPARKOPT_VERIFY
  {
    // The tuner is the system boundary: reject malformed query plans and
    // inconsistent subQ decompositions before optimizing against them.
    const auto subqs = query.plan.DecomposeSubQueries();
    SPARKOPT_VERIFY_LOGICAL(query.plan, query.catalog, &subqs, "Tuner::Run");
  }
#endif
  if (method == TuningMethod::kDefault) {
    auto out = RunWithConfig(query, DefaultSparkConfig());
    if (out.ok()) out->method = TuningMethod::kDefault;
    return out;
  }

  // Compile-time objective model.
  AnalyticSubQModel analytic(&query, opts_.cluster, opts_.cost_params,
                             opts_.prices, opts_.eval_cache_capacity);
  std::unique_ptr<LearnedSubQModel> learned;
  const SubQObjectiveModel* model = &analytic;
  if (opts_.learned_subq_model != nullptr &&
      opts_.learned_subq_model->trained()) {
    learned = std::make_unique<LearnedSubQModel>(
        &query, opts_.cluster, opts_.cost_params, opts_.learned_subq_model,
        opts_.prices, opts_.eval_cache_capacity);
    model = learned.get();
  }

  TuningOutcome out;
  out.method = method;
  out.query_name = query.name;

  obs::Span solve_span("tuner.compile_solve");
  switch (method) {
    case TuningMethod::kHmooc3:
    case TuningMethod::kHmooc3Plus: {
      HmoocOptions ho = opts_.hmooc;
      ho.seed = HashCombine(opts_.seed, query.seed);
      if (opts_.num_threads >= 0) ho.num_threads = opts_.num_threads;
      // FidelityMode::kDistilled needs per-subQ screens; train them here
      // when the caller did not supply any. Training failures fall back
      // to the single-fidelity path rather than failing the solve.
      std::vector<Regressor> screens;
      if (ho.fidelity.mode == FidelityMode::kDistilled &&
          ho.fidelity.distilled == nullptr) {
        obs::Span distill_span("tuner.distill_screens");
        auto trained = TrainDistilledScreens(
            *model, ho.fidelity.distill_samples, ho.seed);
        if (trained.ok()) {
          screens = std::move(*trained);
          ho.fidelity.distilled = &screens;
        } else {
          ho.fidelity.mode = FidelityMode::kOff;
        }
      }
      HmoocSolver solver(model, ho);
      out.moo = solver.Solve();
      break;
    }
    case TuningMethod::kMoWs: {
      FlatProblem flat(model, /*fine_grained=*/false);
      WsOptions wo = opts_.mo_ws;
      wo.seed = HashCombine(opts_.seed, query.seed);
      out.moo = SolveWeightedSum(flat, flat, wo);
      break;
    }
    case TuningMethod::kSoFixedWeights: {
      FlatProblem flat(model, /*fine_grained=*/false);
      out.moo = SolveSoFixedWeights(flat, flat, opts_.preference,
                                    opts_.so_fw_samples,
                                    HashCombine(opts_.seed, query.seed));
      break;
    }
    case TuningMethod::kEvoQuery: {
      FlatProblem flat(model, /*fine_grained=*/false);
      EvoOptions eo = opts_.evo;
      eo.seed = HashCombine(opts_.seed, query.seed);
      out.moo = SolveEvo(flat, flat, eo);
      break;
    }
    case TuningMethod::kPfQuery: {
      FlatProblem flat(model, /*fine_grained=*/false);
      PfOptions po = opts_.pf;
      po.seed = HashCombine(opts_.seed, query.seed);
      out.moo = SolveProgressiveFrontier(flat, flat, po);
      break;
    }
    default:
      return Status::InvalidArgument("unsupported tuning method");
  }
  solve_span.Arg("evaluations", static_cast<double>(out.moo.evaluations));
  solve_span.Arg("pareto_size", static_cast<double>(out.moo.pareto.size()));
  solve_span.End();
  obs::GaugeSet("tuner.pareto_size",
                static_cast<double>(out.moo.pareto.size()));
  out.solve_seconds = out.moo.solve_seconds;
  if (out.moo.pareto.empty()) {
    return Status::Internal("solver returned an empty Pareto set");
  }
#ifdef SPARKOPT_VERIFY
  {
    // A dominated or non-finite point here would corrupt the WUN pick.
    std::vector<ObjectiveVector> front;
    front.reserve(out.moo.pareto.size());
    for (const auto& sol : out.moo.pareto) front.push_back(sol.objectives);
    SPARKOPT_VERIFY_FRONT(front, "Tuner::Run (compile-time front)");
  }
#endif

  // WUN recommendation.
  const size_t pick = out.moo.Recommend(opts_.preference);
  out.chosen = out.moo.pareto[pick];

  // Execute. Fine-grained solutions are aggregated into the single
  // theta_p/theta_s copy Spark accepts at submission.
  const ContextParams tc = DecodeContext(out.chosen.conf);
  PlanParams tp = DecodePlan(out.chosen.conf);
  StageParams ts = DecodeStage(out.chosen.conf);
  SubQEvaluator eval(&query, opts_.cluster, opts_.cost_params, opts_.prices,
                     opts_.eval_cache_capacity);
  if (!out.chosen.per_subq_conf.empty()) {
    AggregateForSubmission(out.chosen.per_subq_conf, eval.subqueries(), &tp,
                           &ts);
  }

  Simulator sim(opts_.cluster, opts_.cost_params, opts_.prices);
  AqeDriver driver(&query.plan, &sim);
  obs::Span exec_span("tuner.execute");
  if (method == TuningMethod::kHmooc3Plus) {
    RuntimeOptimizerOptions ro = opts_.runtime;
    ro.preference = opts_.preference;
    if (opts_.num_threads >= 0) ro.num_threads = opts_.num_threads;
    RuntimeOptimizer hooks(&eval, ro);
    hooks.set_context(tc);
    if (!out.chosen.per_subq_conf.empty()) {
      // Seed runtime re-optimization with the compile-time fine-grained
      // per-subQ parameters (Appendix C.2.1).
      std::vector<PlanParams> init_p;
      std::vector<StageParams> init_s;
      for (const auto& c : out.chosen.per_subq_conf) {
        init_p.push_back(DecodePlan(c));
        init_s.push_back(DecodeStage(c));
      }
      hooks.set_compile_time_solution(std::move(init_p), std::move(init_s));
    }
    auto exec = driver.Run(tc, {tp}, {ts}, &hooks, query.seed);
    if (!exec.ok()) return exec.status();
    out.execution = std::move(*exec);
    out.runtime_stats = hooks.stats();
    out.runtime_overhead_seconds = hooks.overhead_seconds();
  } else {
    auto exec = driver.Run(tc, {tp}, {ts}, nullptr, query.seed);
    if (!exec.ok()) return exec.status();
    out.execution = std::move(*exec);
  }
  return out;
}

obs::TuningReport BuildTuningReport(const TuningOutcome& outcome,
                                    const obs::Session& session) {
  obs::TuningReport r;
  r.query = outcome.query_name;
  r.method = TuningMethodName(outcome.method);

  r.compile_solve_seconds = outcome.solve_seconds;
  r.compile_evaluations = outcome.moo.evaluations;

  // Runtime re-solves come from the spans the RuntimeOptimizer recorded.
  for (const auto& ev : session.trace().Events()) {
    obs::ResolveRecord rec;
    if (ev.name == "runtime.lqp_resolve") {
      rec.kind = "lqp";
    } else if (ev.name == "runtime.qs_resolve") {
      rec.kind = "qs";
    } else {
      continue;
    }
    rec.seconds = ev.dur_us / 1e6;
    rec.at_seconds = ev.ts_us / 1e6;
    r.runtime_resolves.push_back(std::move(rec));
  }
  r.runtime_overhead_seconds = outcome.runtime_overhead_seconds;
  r.lqp_sent = outcome.runtime_stats.lqp_sent;
  r.lqp_pruned = outcome.runtime_stats.lqp_pruned;
  r.qs_sent = outcome.runtime_stats.qs_sent;
  r.qs_pruned = outcome.runtime_stats.qs_pruned;

  const auto& metrics = session.metrics();
  r.inference_us = metrics.StatsOf("model.inference_us");
  r.model_inferences = r.inference_us.count;

  r.sim_stages = static_cast<int64_t>(metrics.CounterValue("sim.stages"));
  r.sim_tasks = static_cast<int64_t>(metrics.CounterValue("sim.tasks"));
  r.sim_spilled_tasks =
      static_cast<int64_t>(metrics.CounterValue("sim.spilled_tasks"));
  r.sim_shuffle_read_bytes = metrics.GaugeValue("sim.shuffle_read_bytes");
  r.sim_io_bytes = metrics.GaugeValue("sim.io_bytes");
  r.aqe_waves = outcome.execution.waves;
  r.aqe_replans = outcome.execution.replans;

  r.pareto_size = outcome.moo.pareto.size();
  r.pareto.reserve(outcome.moo.pareto.size());
  for (const auto& sol : outcome.moo.pareto) {
    if (sol.objectives.size() >= 2) {
      r.pareto.push_back({sol.objectives[0], sol.objectives[1]});
    }
  }
  if (outcome.chosen.objectives.size() >= 2) {
    r.chosen = {outcome.chosen.objectives[0], outcome.chosen.objectives[1]};
  }
  r.exec_latency_seconds = outcome.execution.exec.latency;
  r.exec_cost_dollars = outcome.execution.exec.cost;
  return r;
}

}  // namespace sparkopt
