#pragma once

#include <string>
#include <vector>

#include "exec/aqe.h"
#include "moo/baselines.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "obs/report.h"
#include "runtime/runtime_optimizer.h"

/// \file tuner.h
/// \brief The Optimizer for Parameter Tuning (OPT): the paper's top-level
/// system. Given a query and a cost-performance preference, it runs
/// compile-time multi-objective optimization, recommends a configuration
/// by Weighted-Utopia-Nearest, aggregates fine-grained theta_p/theta_s
/// into the single submission copy Spark accepts, and executes the query
/// with (HMOOC3+) or without (HMOOC3) the runtime optimizer plugged into
/// AQE. Baseline methods from the evaluation section are provided behind
/// the same interface.

namespace sparkopt {

/// Tuning method (the systems compared in Section 6.3).
enum class TuningMethod {
  kDefault = 0,   ///< Spark defaults, plain AQE
  kHmooc3,        ///< compile-time fine-grained MOO only
  kHmooc3Plus,    ///< + runtime optimization (the full system)
  kMoWs,          ///< query-level Weighted Sum MOO (the strongest prior)
  kSoFixedWeights,///< single objective with fixed weights (SO-FW)
  kEvoQuery,      ///< NSGA-II, query-level control
  kPfQuery        ///< Progressive Frontier, query-level control
};

const char* TuningMethodName(TuningMethod m);

struct TunerOptions {
  ClusterSpec cluster;
  CostModelParams cost_params;
  PriceBook prices;
  /// Preference weights over (latency, cost); also used by WUN.
  std::vector<double> preference = {0.9, 0.1};
  HmoocOptions hmooc;
  WsOptions mo_ws;
  EvoOptions evo;
  PfOptions pf;
  RuntimeOptimizerOptions runtime;
  /// Worker threads for the solver and runtime-optimizer fan-outs.
  /// -1 = keep whatever `hmooc.num_threads` / `runtime.num_threads` say;
  /// >= 0 overrides both (0 = hardware concurrency, 1 = sequential).
  int num_threads = -1;
  int so_fw_samples = 3000;
  /// Learned subQ model (nullptr = analytic compile-time model).
  const Regressor* learned_subq_model = nullptr;
  /// Slots in the per-solve evaluation memo table (see model/
  /// subq_evaluator.h). The default fits a single solve; long-lived
  /// embedders (the tuning service) size it explicitly.
  size_t eval_cache_capacity = EvalCache::kDefaultCapacity;
  uint64_t seed = 17;
};

/// Outcome of tuning + executing one query.
struct TuningOutcome {
  TuningMethod method = TuningMethod::kDefault;
  /// Query name (for reports).
  std::string query_name;
  /// Compile-time MOO result (empty Pareto set for kDefault).
  MooRunResult moo;
  /// The WUN-chosen solution (defaults for kDefault).
  MooSolution chosen;
  /// Actual (simulated) adaptive execution under the chosen parameters.
  AqeResult execution;
  /// Compile-time solving time in seconds.
  double solve_seconds = 0.0;
  /// Runtime optimizer request statistics (kHmooc3Plus only).
  RequestStats runtime_stats;
  double runtime_overhead_seconds = 0.0;
};

/// \brief Assembles the observability record of one tuning session from
/// the outcome plus the metrics and spans the instrumented pipeline
/// recorded into `session` (see src/obs/report.h).
///
/// The session should cover exactly one `Tuner::Run` call; counters are
/// cumulative, so reuse a session across queries only for aggregates.
obs::TuningReport BuildTuningReport(const TuningOutcome& outcome,
                                    const obs::Session& session);

/// \brief Facade running one tuning method end to end on one query.
class Tuner {
 public:
  explicit Tuner(TunerOptions opts) : opts_(std::move(opts)) {}

  Result<TuningOutcome> Run(const Query& query, TuningMethod method) const;

  /// Executes the query under an explicit configuration (used for the
  /// default baseline and for ablations).
  Result<TuningOutcome> RunWithConfig(const Query& query,
                                      const std::vector<double>& conf,
                                      bool runtime_opt = false) const;

  const TunerOptions& options() const { return opts_; }

 private:
  TunerOptions opts_;
};

}  // namespace sparkopt
