#include "runtime/runtime_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/pareto_flat.h"
#include "common/rng.h"
#include "moo/objective_models.h"
#include "obs/trace.h"
#include "params/sampler.h"

namespace sparkopt {

namespace {

// theta_p (9 dims) and theta_s (2 dims) subspaces.
const ParamSpace& PlanSpace() {
  static const ParamSpace space =
      SparkParamSpace().Subspace(ParamCategory::kPlan);
  return space;
}
const ParamSpace& StageSpace() {
  static const ParamSpace space =
      SparkParamSpace().Subspace(ParamCategory::kStage);
  return space;
}

PlanParams PlanFromSub(const std::vector<double>& sub) {
  std::vector<double> conf = DefaultSparkConfig();
  for (size_t i = 0; i < sub.size() && i < 9; ++i) conf[8 + i] = sub[i];
  return DecodePlan(conf);
}
StageParams StageFromSub(const std::vector<double>& sub) {
  std::vector<double> conf = DefaultSparkConfig();
  for (size_t i = 0; i < sub.size() && i < 2; ++i) conf[17 + i] = sub[i];
  return DecodeStage(conf);
}

// Weighted pick over candidates' (latency, cost[, io_gb]), normalized by
// the incumbent (candidate 0): score(c) = w0 * lat_c / lat_0 + w1 *
// cost_c / cost_0 (+ w2 * io_c / io_0 under a 3-weight preference), so
// the incumbent scores exactly sum(w). A challenger is adopted only when
// its score beats sum(w) * (1 - hysteresis), keeping runtime
// re-optimization from churning on prediction noise. The 2-weight score
// is bitwise-unchanged by the optional IO term.
size_t PickWeighted(const std::vector<SubQObjectives>& cands,
                    const std::vector<double>& w,
                    double hysteresis = 0.0) {
  if (cands.empty()) return 0;
  const bool use_io = w.size() >= 3;
  const double lat0 = std::max(cands[0].analytical_latency, 1e-9);
  const double cost0 = std::max(cands[0].cost, 1e-12);
  const double io0 = use_io ? std::max(cands[0].io_bytes / 1e9, 1e-12) : 1.0;
  double w_sum = w[0] + w[1];
  if (use_io) w_sum += w[2];
  size_t best = 0;
  double best_v = w_sum;  // incumbent's score
  for (size_t i = 1; i < cands.size(); ++i) {
    double v = w[0] * cands[i].analytical_latency / lat0 +
               w[1] * cands[i].cost / cost0;
    if (use_io) v += w[2] * (cands[i].io_bytes / 1e9) / io0;
    if (v < best_v) {
      best_v = v;
      best = i;
    }
  }
  if (best != 0 && best_v > w_sum * (1.0 - hysteresis)) return 0;
#ifdef SPARKOPT_VERIFY
  // With all preference weights positive, the weighted argmin is always
  // Pareto-optimal among the candidates; an adopted challenger that the
  // kernel reports as dominated means the scoring and the dominance
  // machinery disagree.
  if (best != 0 && w[0] > 0.0 && w[1] > 0.0 && (!use_io || w[2] > 0.0)) {
    ParetoScratch scratch;
    scratch.ax.resize(cands.size());
    scratch.ay.resize(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      scratch.ax[i] = cands[i].analytical_latency;
      scratch.ay[i] = cands[i].cost;
    }
    if (use_io) {
      scratch.az.resize(cands.size());
      for (size_t i = 0; i < cands.size(); ++i) {
        scratch.az[i] = cands[i].io_bytes / 1e9;
      }
      // FlatParetoPositions3 only consumes scratch.order/sy/sz, so the
      // ax/ay/az staging above can double as its input buffers.
      FlatParetoPositions3(scratch.ax.data(), scratch.ay.data(),
                           scratch.az.data(), cands.size(), &scratch.kept,
                           &scratch);
    } else {
      FlatParetoPositions(scratch.ax.data(), scratch.ay.data(),
                          cands.size(), &scratch.kept, &scratch);
    }
    const bool non_dominated =
        std::find(scratch.kept.begin(), scratch.kept.end(),
                  static_cast<uint32_t>(best)) != scratch.kept.end();
    SPARKOPT_CHECK(non_dominated)
        << "PickWeighted adopted dominated candidate " << best;
  }
#endif
  return best;
}

}  // namespace

RuntimeOptimizer::RuntimeOptimizer(const SubQEvaluator* evaluator,
                                   RuntimeOptimizerOptions opts)
    : evaluator_(evaluator),
      opts_(std::move(opts)),
      workers_(opts_.num_threads) {}

void RuntimeOptimizer::OnPlanCollapsed(const LogicalPlan& plan,
                                       const std::vector<SubQuery>& subqs,
                                       const std::vector<bool>& completed,
                                       std::vector<PlanParams>* theta_p) {
  // Pruning (Appendix C.2.2): LQP parametric rules decide join
  // algorithms, so a request is useful only when some remaining subQ
  // contains a join whose inputs are now all completed.
  std::vector<int> actionable;
  for (const auto& sq : subqs) {
    if (completed[sq.id]) continue;
    bool has_ready_join = false;
    for (int op_id : sq.op_ids) {
      const auto& op = plan.op(op_id);
      if (op.type != OpType::kJoin) continue;
      bool inputs_ready = true;
      for (int c : op.children) {
        // Find the child's subQ.
        for (const auto& csq : subqs) {
          if (std::find(csq.op_ids.begin(), csq.op_ids.end(), c) !=
              csq.op_ids.end()) {
            if (csq.id != sq.id && !completed[csq.id]) inputs_ready = false;
            break;
          }
        }
      }
      if (inputs_ready) has_ready_join = true;
    }
    if (has_ready_join) actionable.push_back(sq.id);
  }
  if (opts_.enable_pruning && actionable.empty()) {
    ++stats_.lqp_pruned;
    obs::Count("runtime.lqp_pruned");
    return;
  }
  ++stats_.lqp_sent;
  overhead_s_ += opts_.request_overhead_s;
  obs::Count("runtime.lqp_sent");
  obs::Span span("runtime.lqp_resolve");
  span.Arg("actionable_subqs", static_cast<double>(actionable.size()));
  // Per-resolve latency distribution (p50/p99 for the scrape surface;
  // the span above feeds the phase profile).
  obs::ScopedHistogramTimer resolve_timer(
      obs::HistogramFor("runtime.lqp_resolve_us"));

  // Fine-grained from here on: expand a single shared theta_p.
  const int m = static_cast<int>(subqs.size());
  if (static_cast<int>(theta_p->size()) == 1 && m > 1) {
    theta_p->assign(m, theta_p->front());
  }

  // Re-optimize theta_p of the actionable subQs (all remaining ones when
  // pruning is off) against runtime statistics.
  Rng rng(HashCombine(opts_.seed, stats_.lqp_sent));
  const auto samples = SampleLatinHypercube(
      PlanSpace(), static_cast<size_t>(opts_.theta_p_candidates), &rng,
      /*margin=*/0.05);
  std::vector<int> targets = actionable;
  if (!opts_.enable_pruning) {
    targets.clear();
    for (const auto& sq : subqs) {
      if (!completed[sq.id]) targets.push_back(sq.id);
    }
  }
  // The targets carry distinct subQ ids and the candidate samples were
  // drawn above, so each re-solve is independent: fan the targets out
  // across the workers, each writing only its own theta_p slot.
  workers_.ParallelFor(targets.size(), [&](size_t t) {
    const int sq_id = targets[t];
    // Steady-state solve path: reuse per-worker buffers across tasks and
    // calls instead of reallocating (capacity is retained by clear()).
    thread_local std::vector<PlanParams> cands;
    thread_local std::vector<size_t> sel;
    thread_local std::vector<ObjectiveVector> t0;
    thread_local std::vector<SubQObjectives> objs;
    cands.clear();
    sel.clear();
    cands.push_back((*theta_p)[std::min<size_t>(sq_id,
                                                theta_p->size() - 1)]);
    if (!init_theta_p_.empty()) {
      cands.push_back(init_theta_p_[std::min<size_t>(
          sq_id, init_theta_p_.size() - 1)]);
    }
    for (const auto& s : samples) cands.push_back(PlanFromSub(s));
    // Multi-fidelity: coarse-screen the candidates and evaluate only the
    // survivors at full fidelity. The incumbent/seed prefix is force-kept,
    // so sel[0] == 0 and PickWeighted's incumbent normalization holds.
    if (opts_.fidelity.mode != FidelityMode::kOff) {
      const bool want_io = opts_.preference.size() >= 3;
      t0.resize(cands.size());
      for (size_t k = 0; k < cands.size(); ++k) {
        const auto o = evaluator_->EvaluateScreen(
            sq_id, context_, cands[k], StageParams{},
            CardinalitySource::kEstimated, &completed);
        if (want_io) {
          t0[k] = {o.analytical_latency, o.cost, o.io_bytes / 1e9};
        } else {
          t0[k] = {o.analytical_latency, o.cost};
        }
      }
      SelectSurvivors2(t0, opts_.fidelity.survival_margin,
                       opts_.fidelity.min_promote,
                       opts_.fidelity.promote_frac,
                       /*keep_prefix=*/cands.size() - samples.size(), &sel);
      obs::Count("runtime.mf_tier0_evals", cands.size());
      obs::Count("runtime.mf_tier1_evals", sel.size());
    } else {
      sel.resize(cands.size());
      std::iota(sel.begin(), sel.end(), size_t{0});
    }
    objs.clear();
    objs.reserve(sel.size());
    for (size_t k : sel) {
      objs.push_back(evaluator_->Evaluate(sq_id, context_, cands[k],
                                          StageParams{},
                                          CardinalitySource::kEstimated,
                                          &completed));
    }
    const size_t best = PickWeighted(objs, opts_.preference, /*hyst=*/0.12);
    (*theta_p)[sq_id] = cands[sel[best]];
  });
  last_completed_ = completed;
  last_theta_p_ = *theta_p;
}

void RuntimeOptimizer::OnStagesReady(const PhysicalPlan& plan,
                                     const std::vector<int>& ready,
                                     const std::vector<SubQuery>& subqs,
                                     std::vector<StageParams>* theta_s) {
  const int m = static_cast<int>(subqs.size());
  if (static_cast<int>(theta_s->size()) == 1 && m > 1) {
    theta_s->assign(m, theta_s->front());
  }
  Rng rng(HashCombine(opts_.seed, 0x5A + stats_.qs_sent));
  // Candidate and objective buffers live across the stage loop; each
  // stage clears and refills them instead of reallocating.
  std::vector<StageParams> cands;
  std::vector<SubQObjectives> objs;
  for (int sid : ready) {
    const auto& st = plan.stages[sid];
    // Pruning: QS rules rebalance post-shuffle partitions — skip scan
    // stages and stages below the advisory partition size.
    if (opts_.enable_pruning &&
        (st.is_scan_stage || st.input_bytes < 64.0 * 1024 * 1024)) {
      ++stats_.qs_pruned;
      obs::Count("runtime.qs_pruned");
      continue;
    }
    ++stats_.qs_sent;
    overhead_s_ += opts_.request_overhead_s;
    obs::Count("runtime.qs_sent");
    obs::Span span("runtime.qs_resolve");
    span.Arg("stage", sid);
    obs::ScopedHistogramTimer resolve_timer(
        obs::HistogramFor("runtime.qs_resolve_us"));

    const int sq_id = std::min(st.subq_id, m - 1);
    // Evaluate theta_s candidates under the theta_p actually in force for
    // this stage (from the last collapsed-plan optimization, if any).
    const PlanParams tp =
        last_theta_p_.empty()
            ? PlanParams{}
            : last_theta_p_[std::min<size_t>(sq_id,
                                             last_theta_p_.size() - 1)];
    cands.clear();
    cands.push_back((*theta_s)[sq_id]);
    if (!init_theta_s_.empty()) {
      cands.push_back(init_theta_s_[std::min<size_t>(
          sq_id, init_theta_s_.size() - 1)]);
    }
    const auto samples = SampleLatinHypercube(
        StageSpace(), static_cast<size_t>(opts_.theta_s_candidates), &rng,
        /*margin=*/0.05);
    for (const auto& s : samples) cands.push_back(StageFromSub(s));
    const std::vector<bool>* done =
        last_completed_.empty() ? nullptr : &last_completed_;
    // Multi-fidelity: screen on the calling thread (the coarse pass is
    // cheap), escalate survivors only. The incumbent/seed prefix is
    // force-kept so PickWeighted's normalization is unchanged.
    std::vector<size_t> sel;
    if (opts_.fidelity.mode != FidelityMode::kOff) {
      const bool want_io = opts_.preference.size() >= 3;
      std::vector<ObjectiveVector> t0(cands.size());
      for (size_t k = 0; k < cands.size(); ++k) {
        const auto o = evaluator_->EvaluateScreen(
            sq_id, context_, tp, cands[k], CardinalitySource::kEstimated,
            done);
        if (want_io) {
          t0[k] = {o.analytical_latency, o.cost, o.io_bytes / 1e9};
        } else {
          t0[k] = {o.analytical_latency, o.cost};
        }
      }
      SelectSurvivors2(t0, opts_.fidelity.survival_margin,
                       opts_.fidelity.min_promote,
                       opts_.fidelity.promote_frac,
                       /*keep_prefix=*/cands.size() - samples.size(), &sel);
      obs::Count("runtime.mf_tier0_evals", cands.size());
      obs::Count("runtime.mf_tier1_evals", sel.size());
    } else {
      sel.resize(cands.size());
      std::iota(sel.begin(), sel.end(), size_t{0});
    }
    // The stage loop itself is sequential (shared rng; later stages may
    // rewrite the same theta_s slot), but the candidate evaluations are
    // independent — fan them out by index.
    objs.assign(sel.size(), SubQObjectives{});
    workers_.ParallelFor(sel.size(), [&](size_t k) {
      objs[k] = evaluator_->Evaluate(sq_id, context_, tp, cands[sel[k]],
                                     CardinalitySource::kEstimated, done);
    });
    const size_t best = PickWeighted(objs, opts_.preference, /*hyst=*/0.12);
    (*theta_s)[sq_id] = cands[sel[best]];
  }
}

void AggregateForSubmission(
    const std::vector<std::vector<double>>& per_subq_conf,
    const std::vector<SubQuery>& subqs, PlanParams* theta_p,
    StageParams* theta_s) {
  if (per_subq_conf.empty()) return;
  const auto defaults = DefaultSparkConfig();

  // Median aggregation for the non-threshold parameters.
  auto median_of = [&](size_t idx) {
    std::vector<double> vals;
    vals.reserve(per_subq_conf.size());
    for (const auto& c : per_subq_conf) {
      vals.push_back(idx < c.size() ? c[idx] : defaults[idx]);
    }
    std::sort(vals.begin(), vals.end());
    return vals[vals.size() / 2];
  };

  std::vector<double> agg = defaults;
  for (size_t i = kAdvisoryPartitionSizeMb; i <= kCoalesceMinPartitionSizeMb;
       ++i) {
    agg[i] = median_of(i);
  }

  // Partition-count parameters aggregate asymmetrically: too few shuffle
  // partitions on the heaviest stage is catastrophic (oversized spilling
  // tasks) while too many is mildly wasteful, so s5 takes the maximum
  // across subQs; likewise scan parallelism uses the smallest split size
  // and the advisory size keeps the smallest choice so AQE coalescing
  // stays conservative.
  auto extreme_of = [&](size_t idx, bool take_max) {
    double v = take_max ? -1e300 : 1e300;
    for (const auto& c : per_subq_conf) {
      const double x = idx < c.size() ? c[idx] : defaults[idx];
      v = take_max ? std::max(v, x) : std::min(v, x);
    }
    return v;
  };
  agg[kShufflePartitions] = extreme_of(kShufflePartitions, /*max=*/true);
  agg[kMaxPartitionBytesMb] =
      extreme_of(kMaxPartitionBytesMb, /*max=*/false);
  agg[kAdvisoryPartitionSizeMb] =
      extreme_of(kAdvisoryPartitionSizeMb, /*max=*/false);

  // Join thresholds: smallest value among join-bearing subQs, floored at
  // the Spark defaults (Appendix C.2.1) so BHJs on small scan-side inputs
  // are not missed while overeager compile-time broadcasts are avoided.
  double min_bc = std::numeric_limits<double>::infinity();
  double min_shj = std::numeric_limits<double>::infinity();
  for (const auto& sq : subqs) {
    if (!sq.has_join) continue;
    if (sq.id >= static_cast<int>(per_subq_conf.size())) continue;
    const auto& c = per_subq_conf[sq.id];
    min_bc = std::min(min_bc, c[kBroadcastJoinThresholdMb]);
    min_shj = std::min(min_shj, c[kShuffledHashJoinThresholdMb]);
  }
  if (std::isfinite(min_bc)) {
    agg[kBroadcastJoinThresholdMb] =
        std::max(min_bc, defaults[kBroadcastJoinThresholdMb]);
  }
  if (std::isfinite(min_shj)) {
    agg[kShuffledHashJoinThresholdMb] =
        std::max(min_shj, defaults[kShuffledHashJoinThresholdMb]);
  }

  *theta_p = DecodePlan(agg);
  *theta_s = DecodeStage(agg);
}

}  // namespace sparkopt
