#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "exec/aqe.h"
#include "model/subq_evaluator.h"
#include "moo/problem.h"

/// \file runtime_optimizer.h
/// \brief Runtime optimization (Section 5.2): the AQE-side half of the
/// hybrid approach.
///
/// Two entry points, matching steps 6 and 9 of Figure 2:
///  - collapsed-plan requests re-optimize theta_p for the remaining subQs
///    using the true statistics of completed stages;
///  - query-stage requests re-optimize theta_s for stages about to run.
///
/// Requests are pruned by the runtime semantics of the parametric rules
/// (Appendix C.2.2): LQP rules only decide join algorithms, so requests
/// for join-free remainders are skipped and join requests are deferred
/// until all inputs have completed; QS rules only rebalance post-shuffle
/// partitions, so scan stages and stages smaller than the advisory
/// partition size are skipped. The paper reports 86% / 92% of calls
/// eliminated this way.
///
/// The optimizer runs in a simulated client-server loop: each request
/// that is actually sent charges a fixed round-trip overhead.

namespace sparkopt {

/// Counters for the pruning experiment.
struct RequestStats {
  int lqp_sent = 0;
  int lqp_pruned = 0;
  int qs_sent = 0;
  int qs_pruned = 0;

  int TotalSent() const { return lqp_sent + qs_sent; }
  int TotalPruned() const { return lqp_pruned + qs_pruned; }
  double PrunedFraction() const {
    const int total = TotalSent() + TotalPruned();
    return total > 0 ? static_cast<double>(TotalPruned()) / total : 0.0;
  }
};

struct RuntimeOptimizerOptions {
  /// Candidate theta_p samples evaluated per collapsed-plan request.
  int theta_p_candidates = 24;
  /// Candidate theta_s samples evaluated per query-stage request.
  int theta_s_candidates = 12;
  /// Preference weights (latency, cost) for picking from candidate sets.
  std::vector<double> preference = {0.9, 0.1};
  /// Simulated client-server round trip per sent request (seconds).
  double request_overhead_s = 0.015;
  /// Disable pruning (ablation of Appendix C.2.2).
  bool enable_pruning = true;
  /// Worker threads for the per-subQ re-solves and candidate evaluation
  /// fan-outs. 0 = hardware concurrency, 1 = sequential. Results are
  /// bitwise identical at any thread count (index-addressed outputs; RNG
  /// draws stay on the calling thread).
  int num_threads = 0;
  /// Multi-fidelity screening of the candidate sets (DESIGN.md section
  /// 13). Any mode other than kOff screens candidates with the analytic
  /// SubQEvaluator::EvaluateScreen (distilled screens are a compile-time
  /// artifact; the runtime always uses the coarse analytic tier) and
  /// evaluates only the survivors at full fidelity. The incumbent and
  /// compile-time seeds are always promoted, so the hysteresis
  /// normalization is unaffected. kOff (default) keeps the re-solve
  /// bitwise identical to the single-fidelity path.
  FidelityOptions fidelity;
  uint64_t seed = 99;
};

/// \brief AqeHooks implementation backed by the subQ evaluator with
/// runtime (completed-subQ) statistics.
class RuntimeOptimizer : public AqeHooks {
 public:
  RuntimeOptimizer(const SubQEvaluator* evaluator,
                   RuntimeOptimizerOptions opts);

  /// Must be called with the submitted theta_c before execution starts
  /// (the runtime optimizer tunes theta_p/theta_s under a fixed context).
  void set_context(const ContextParams& theta_c) { context_ = theta_c; }

  /// Seeds the candidate sets with the compile-time fine-grained per-subQ
  /// parameters ("ideally, one could copy theta_p and theta_s from the
  /// initial subQ" — Appendix C.2.1). Spark only accepts the aggregated
  /// copy at submission; the runtime optimizer restores the fine-grained
  /// intent once AQE is in control.
  void set_compile_time_solution(std::vector<PlanParams> theta_p,
                                 std::vector<StageParams> theta_s) {
    init_theta_p_ = std::move(theta_p);
    init_theta_s_ = std::move(theta_s);
  }

  void OnPlanCollapsed(const LogicalPlan& plan,
                       const std::vector<SubQuery>& subqs,
                       const std::vector<bool>& completed_subqs,
                       std::vector<PlanParams>* theta_p) override;

  void OnStagesReady(const PhysicalPlan& plan,
                     const std::vector<int>& ready_stage_ids,
                     const std::vector<SubQuery>& subqs,
                     std::vector<StageParams>* theta_s) override;

  const RequestStats& stats() const { return stats_; }
  /// Total simulated optimizer-call overhead accumulated (seconds).
  double overhead_seconds() const { return overhead_s_; }

 private:
  const SubQEvaluator* evaluator_;
  RuntimeOptimizerOptions opts_;
  ThreadPool workers_;
  RequestStats stats_;
  double overhead_s_ = 0.0;
  ContextParams context_;
  std::vector<bool> last_completed_;
  std::vector<PlanParams> last_theta_p_;
  std::vector<PlanParams> init_theta_p_;
  std::vector<StageParams> init_theta_s_;
};

/// \brief Aggregates fine-grained compile-time theta_p/theta_s into the
/// single copy Spark accepts at submission (Appendix C.2.1): the join
/// thresholds take the minimum over join-bearing subQs (lower-bounded by
/// the Spark defaults so small scan-side broadcasts are not missed);
/// remaining parameters take the median across subQs.
void AggregateForSubmission(const std::vector<std::vector<double>>&
                                per_subq_conf,
                            const std::vector<SubQuery>& subqs,
                            PlanParams* theta_p, StageParams* theta_s);

}  // namespace sparkopt
