#include "workload/tpcds.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {

std::vector<TableStats> TpcdsCatalog(double sf) {
  auto t = [](const char* name, double rows, double row_bytes, double skew) {
    TableStats s;
    s.name = name;
    s.rows = rows;
    s.row_bytes = row_bytes;
    s.skew = skew;
    return s;
  };
  return {
      t("date_dim", 73049, 140, 0.0),
      t("time_dim", 86400, 80, 0.0),
      t("item", 2040 * sf, 280, 0.05),
      t("customer", 20000 * sf, 300, 0.05),
      t("customer_address", 10000 * sf, 180, 0.05),
      t("customer_demographics", 1920800, 60, 0.0),
      t("household_demographics", 7200, 60, 0.0),
      t("store", 4 * sf + 2, 400, 0.0),
      t("warehouse", 15, 300, 0.0),
      t("promotion", 10 * sf, 200, 0.0),
      t("store_sales", 2880000 * sf, 160, 0.2),
      t("catalog_sales", 1440000 * sf, 220, 0.15),
      t("web_sales", 720000 * sf, 220, 0.15),
      t("store_returns", 288000 * sf, 150, 0.2),
      t("catalog_returns", 144000 * sf, 160, 0.15),
      t("web_returns", 72000 * sf, 160, 0.15),
      t("inventory", 3990000 * sf, 40, 0.0),
  };
}

namespace {

struct Gen {
  Rng rng;
  bool vary;
  Rng vary_rng;

  double Sel(double base) {
    if (!vary) return base;
    return std::clamp(base * vary_rng.LogNormal(0.0, 0.35), 1e-6, 1.0);
  }
  double Fac(double base) {
    if (!vary) return base;
    return std::max(base * vary_rng.LogNormal(0.0, 0.3), 1e-7);
  }
};

const int kFacts[3] = {kStoreSales, kCatalogSales, kWebSales};
const int kReturnsOf[3] = {kStoreReturns, kCatalogReturns, kWebReturns};
const char* kChannelName[3] = {"store", "catalog", "web"};

// Dimension candidates with typical filter selectivities.
struct DimChoice {
  int table;
  const char* token;
  double sel;
};
const DimChoice kDims[] = {
    {kDateDim, "d_year", 0.05},
    {kItem, "i_category", 0.1},
    {kCustomerDs, "c_birth_country", 1.0},
    {kCustomerAddress, "ca_state", 0.1},
    {kCustomerDemographics, "cd_gender", 0.3},
    {kHouseholdDemographics, "hd_dep_count", 0.2},
    {kStore, "s_state", 0.3},
    {kPromotion, "p_channel", 0.5},
    {kTimeDim, "t_hour", 0.2},
};

// Builds fact scan + `ndims` dimension joins; returns the top join op and
// the cumulative selectivity that has been applied to the fact.
int StarBlock(PlanBuilder* b, Gen* g, int channel, int ndims,
              double fact_sel, double* cumulative_sel) {
  const auto& rng = g->rng;
  (void)rng;
  int fact = b->Scan(kFacts[channel], g->Sel(fact_sel), 180,
                     {kChannelName[channel], "sales"});
  double cum = 1.0;
  int top = fact;
  // Date dim is always first (every TPC-DS query joins date_dim).
  std::vector<int> picks = {0};
  std::vector<int> pool;
  for (int i = 1; i < static_cast<int>(std::size(kDims)); ++i) {
    pool.push_back(i);
  }
  g->rng.Shuffle(&pool);
  for (int i = 0; i < ndims - 1 && i < static_cast<int>(pool.size()); ++i) {
    picks.push_back(pool[i]);
  }
  for (int pi : picks) {
    const auto& d = kDims[pi];
    const double dsel = g->Sel(d.sel);
    int dim = b->Scan(d.table, dsel, 160, {d.token});
    const double skew = d.table == kItem ? 0.3 : 0.0;
    top = b->Join(top, dim, g->Fac(dsel), {d.token, "_sk"}, skew);
    cum *= dsel;
  }
  *cumulative_sel = cum;
  return top;
}

}  // namespace

Result<Query> MakeTpcdsQuery(int qid, const std::vector<TableStats>* catalog,
                             uint64_t variant) {
  if (qid < 1 || qid > 102) {
    return Status::InvalidArgument("TPC-DS query id must be in [1, 102]");
  }
  Gen g{Rng(HashCombine(0xD5D5ULL, qid)), variant != 0,
        Rng(HashCombine(variant, qid * 104729))};
  PlanBuilder b("TPCDS-Q" + std::to_string(qid));

  // Family mix tuned to the benchmark's structure distribution.
  const double r = g.rng.Uniform();
  const int channel = static_cast<int>(g.rng.NextBounded(3));

  if (r < 0.38) {
    // ---- Family A: star join + rollup (the most common shape) ----
    const int ndims = 3 + static_cast<int>(g.rng.NextBounded(5));  // 3..7
    double cum = 1.0;
    int top = StarBlock(&b, &g, channel, ndims, 1.0, &cum);
    int agg = b.Aggregate(top, g.Fac(0.002), true,
                          {"group", "rollup", "sum"});
    int srt = b.Sort(agg, {"order"});
    b.Limit(srt, 100);
  } else if (r < 0.58) {
    // ---- Family B: snowflake (dimension chains) ----
    const int ndims = 2 + static_cast<int>(g.rng.NextBounded(3));
    double cum = 1.0;
    int top = StarBlock(&b, &g, channel, ndims, 1.0, &cum);
    // Snowflake arm: customer -> address -> demographics.
    int c = b.Scan(kCustomerDs, 1.0, 300, {"customer"});
    int ca = b.Scan(kCustomerAddress, g.Sel(0.12), 180, {"ca_state"});
    int cd = b.Scan(kCustomerDemographics, g.Sel(0.3), 60, {"cd_gender"});
    int arm1 = b.Join(c, ca, g.Fac(0.12), {"ca_address_sk"});
    int arm2 = b.Join(arm1, cd, g.Fac(0.3), {"cd_demo_sk"});
    int j = b.Join(top, arm2, g.Fac(0.05), {"customer_sk"});
    int agg = b.Aggregate(j, g.Fac(0.001), true, {"group", "sum"});
    int srt = b.Sort(agg, {"order"});
    b.Limit(srt, 100);
  } else if (r < 0.73) {
    // ---- Family C: fact-to-fact with returns ----
    double cum = 1.0;
    const int ndims = 2 + static_cast<int>(g.rng.NextBounded(3));
    int top = StarBlock(&b, &g, channel, ndims, 1.0, &cum);
    int ret = b.Scan(kReturnsOf[channel], g.Sel(0.8), 150,
                     {kChannelName[channel], "returns"});
    int d2 = b.Scan(kDateDim, g.Sel(0.08), 140, {"d_year", "returned"});
    int rj = b.Join(ret, d2, g.Fac(0.08), {"returned_date_sk"});
    int j = b.Join(top, rj, g.Fac(0.08), {"ticket_number", "item_sk"}, 0.25);
    int agg = b.Aggregate(j, g.Fac(0.01), true,
                          {"group", "return_ratio", "sum"});
    int srt = b.Sort(agg, {"return_ratio"});
    b.Limit(srt, 100);
  } else if (r < 0.9) {
    // ---- Family D: multi-channel union (widest plans, up to ~47 subQs).
    const int blocks = 2 + static_cast<int>(g.rng.NextBounded(2));  // 2..3
    std::vector<int> tops;
    for (int bi = 0; bi < blocks; ++bi) {
      const int ch = (channel + bi) % 3;
      const int ndims = 3 + static_cast<int>(g.rng.NextBounded(4));
      double cum = 1.0;
      int top = StarBlock(&b, &g, ch, ndims, 1.0, &cum);
      int agg = b.Aggregate(top, g.Fac(0.004), true,
                            {"channel", "group", "sum"});
      tops.push_back(agg);
    }
    int u = b.Union(tops, 96);
    int agg = b.Aggregate(u, g.Fac(0.3), true, {"rollup", "channel"});
    int srt = b.Sort(agg, {"order"});
    b.Limit(srt, 100);
  } else {
    // ---- Family E: year-over-year self-join report ----
    std::vector<int> years;
    for (int yi = 0; yi < 2; ++yi) {
      const int ndims = 2 + static_cast<int>(g.rng.NextBounded(2));
      double cum = 1.0;
      int top = StarBlock(&b, &g, channel, ndims, 1.0, &cum);
      int agg = b.Aggregate(top, g.Fac(0.003), true,
                            {"year", yi == 0 ? "curr" : "prev", "sum"});
      years.push_back(agg);
    }
    int j = b.Join(years[0], years[1], g.Fac(0.9), {"yoy", "key"});
    int f = b.Filter(j, g.Sel(0.1), {"ratio", ">"});
    int srt = b.Sort(f, {"delta", "desc"});
    b.Limit(srt, 100);
  }

  CboErrorModel err;
  err.seed = HashCombine(0xD5ULL, HashCombine(qid, variant));
  return b.Build(catalog, err);
}

std::vector<Query> TpcdsBenchmark(const std::vector<TableStats>* catalog) {
  std::vector<Query> out;
  out.reserve(102);
  for (int q = 1; q <= 102; ++q) {
    auto r = MakeTpcdsQuery(q, catalog);
    if (r.ok()) out.push_back(std::move(*r));
  }
  return out;
}

}  // namespace sparkopt
