#pragma once

#include <vector>

#include "workload/builder.h"

/// \file tpch.h
/// \brief Structural TPC-H workload at a configurable scale factor.
///
/// Each of the 22 queries is modeled as its logical join/aggregate
/// skeleton with SF-scaled base-table cardinalities and the approximate
/// predicate selectivities of the official query parameters. Variant
/// seeds perturb selectivities/join factors to emulate the paper's 50k
/// "parametric queries" generated from the same templates.

namespace sparkopt {

/// Table ids in the TPC-H catalog (indices into TpchCatalog()).
enum TpchTable {
  kRegion = 0,
  kNation,
  kSupplier,
  kCustomer,
  kPart,
  kPartSupp,
  kOrders,
  kLineitem,
  kNumTpchTables
};

/// Base-table statistics at the given scale factor (default SF 100, as in
/// the paper).
std::vector<TableStats> TpchCatalog(double scale_factor = 100.0);

/// \brief Builds TPC-H query `qid` (1-22).
///
/// `variant` = 0 gives the canonical template; other values perturb the
/// selectivities and join factors deterministically (training workloads).
/// The catalog pointer must outlive the returned Query.
Result<Query> MakeTpchQuery(int qid, const std::vector<TableStats>* catalog,
                            uint64_t variant = 0);

/// All 22 canonical queries.
std::vector<Query> TpchBenchmark(const std::vector<TableStats>* catalog);

}  // namespace sparkopt
