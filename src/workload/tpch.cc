#include "workload/tpch.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {

std::vector<TableStats> TpchCatalog(double sf) {
  auto t = [](const char* name, double rows, double row_bytes, double skew) {
    TableStats s;
    s.name = name;
    s.rows = rows;
    s.row_bytes = row_bytes;
    s.skew = skew;
    return s;
  };
  return {
      t("region", 5, 120, 0.0),
      t("nation", 25, 120, 0.0),
      t("supplier", 10000 * sf, 140, 0.0),
      t("customer", 150000 * sf, 180, 0.05),
      t("part", 200000 * sf, 150, 0.1),
      t("partsupp", 800000 * sf, 140, 0.1),
      t("orders", 1500000 * sf, 110, 0.1),
      t("lineitem", 6000000 * sf, 120, 0.15),
  };
}

namespace {

/// Deterministic selectivity perturbation for training variants.
class Vary {
 public:
  explicit Vary(uint64_t variant) : active_(variant != 0), rng_(variant) {}

  /// Perturbs a selectivity (clamped to (0, 1]).
  double Sel(double base) {
    if (!active_) return base;
    return std::clamp(base * rng_.LogNormal(0.0, 0.35), 1e-6, 1.0);
  }
  /// Perturbs a join/aggregate cardinality factor.
  double Fac(double base) {
    if (!active_) return base;
    return std::max(base * rng_.LogNormal(0.0, 0.3), 1e-7);
  }

 private:
  bool active_;
  Rng rng_;
};

constexpr double kLineBytes = 120, kOrdBytes = 110, kCustBytes = 180,
                 kPartBytes = 150, kSuppBytes = 140, kPsBytes = 140,
                 kNatBytes = 120, kRegBytes = 120;

}  // namespace

Result<Query> MakeTpchQuery(int qid, const std::vector<TableStats>* catalog,
                            uint64_t variant) {
  if (qid < 1 || qid > 22) {
    return Status::InvalidArgument("TPC-H query id must be in [1, 22]");
  }
  Vary v(variant == 0 ? 0 : HashCombine(variant, qid * 7919));
  PlanBuilder b("TPCH-Q" + std::to_string(qid));

  switch (qid) {
    case 1: {  // Pricing summary: big scan + tiny group-by.
      int li = b.Scan(kLineitem, v.Sel(0.985), kLineBytes,
                      {"l_shipdate", "<=", "1998-09-02"});
      int agg = b.Aggregate(li, v.Fac(1e-8), true,
                            {"l_returnflag", "l_linestatus", "sum", "avg"});
      b.Sort(agg, {"l_returnflag", "l_linestatus"});
      break;
    }
    case 2: {  // Minimum-cost supplier: snowflake + correlated min.
      int r = b.Scan(kRegion, v.Sel(0.2), kRegBytes, {"r_name", "EUROPE"});
      int n = b.Scan(kNation, 1.0, kNatBytes);
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int ps = b.Scan(kPartSupp, 1.0, kPsBytes);
      int p = b.Scan(kPart, v.Sel(0.004), kPartBytes,
                     {"p_size", "15", "p_type", "like", "BRASS"});
      int j1 = b.Join(n, r, v.Fac(0.2), {"n_regionkey"});
      int j2 = b.Join(s, j1, v.Fac(0.2), {"s_nationkey"});
      int j3 = b.Join(ps, j2, v.Fac(0.2), {"ps_suppkey"});
      int j4 = b.Join(j3, p, v.Fac(0.004), {"ps_partkey"});
      int agg = b.Aggregate(j4, v.Fac(0.25), true, {"min", "ps_supplycost"});
      int j5 = b.Join(j4, agg, v.Fac(0.25), {"min_cost_match"});
      int srt = b.Sort(j5, {"s_acctbal", "desc"});
      b.Limit(srt, 100);
      break;
    }
    case 3: {  // Shipping priority: 3 scans, 2 joins, pipelined agg.
      int c = b.Scan(kCustomer, v.Sel(0.2), kCustBytes,
                     {"c_mktsegment", "BUILDING"});
      int o = b.Scan(kOrders, v.Sel(0.48), kOrdBytes,
                     {"o_orderdate", "<", "1995-03-15"});
      int li = b.Scan(kLineitem, v.Sel(0.54), kLineBytes,
                      {"l_shipdate", ">", "1995-03-15"});
      int j1 = b.Join(c, o, v.Fac(0.2), {"c_custkey"});
      int j2 = b.Join(j1, li, v.Fac(0.3), {"l_orderkey"});
      int agg = b.Aggregate(j2, v.Fac(0.6), false,
                            {"l_orderkey", "sum", "revenue"});
      int srt = b.Sort(agg, {"revenue", "desc"});
      b.Limit(srt, 10);
      break;
    }
    case 4: {  // Order priority checking (semi-join).
      int o = b.Scan(kOrders, v.Sel(0.038), kOrdBytes,
                     {"o_orderdate", "1993-07", "quarter"});
      int li = b.Scan(kLineitem, v.Sel(0.63), kLineBytes,
                      {"l_commitdate", "<", "l_receiptdate"});
      int j = b.Join(o, li, v.Fac(0.015), {"semi", "l_orderkey"});
      int agg = b.Aggregate(j, v.Fac(1e-6), true,
                            {"o_orderpriority", "count"});
      b.Sort(agg, {"o_orderpriority"});
      break;
    }
    case 5: {  // Local supplier volume: 6 scans, 5 joins.
      int r = b.Scan(kRegion, v.Sel(0.2), kRegBytes, {"r_name", "ASIA"});
      int n = b.Scan(kNation, 1.0, kNatBytes);
      int c = b.Scan(kCustomer, 1.0, kCustBytes);
      int o = b.Scan(kOrders, v.Sel(0.15), kOrdBytes,
                     {"o_orderdate", "1994", "year"});
      int li = b.Scan(kLineitem, 1.0, kLineBytes);
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int j1 = b.Join(n, r, v.Fac(0.2), {"n_regionkey"});
      int j2 = b.Join(c, j1, v.Fac(0.2), {"c_nationkey"});
      int j3 = b.Join(j2, o, v.Fac(0.03), {"o_custkey"});
      int j4 = b.Join(j3, li, v.Fac(0.12), {"l_orderkey"}, 0.2);
      int j5 = b.Join(j4, s, v.Fac(0.04), {"l_suppkey", "nation_match"});
      int agg = b.Aggregate(j5, v.Fac(1e-6), true, {"n_name", "sum"});
      b.Sort(agg, {"revenue", "desc"});
      break;
    }
    case 6: {  // Forecasting revenue change: scan + global agg.
      int li = b.Scan(kLineitem, v.Sel(0.019), kLineBytes,
                      {"l_shipdate", "1994", "l_discount", "l_quantity"});
      b.Aggregate(li, v.Fac(1e-9), true, {"sum", "revenue"});
      break;
    }
    case 7: {  // Volume shipping: nation pair analysis.
      int n1 = b.Scan(kNation, v.Sel(0.08), kNatBytes, {"n_name", "FRANCE"});
      int n2 = b.Scan(kNation, v.Sel(0.08), kNatBytes, {"n_name", "GERMANY"});
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int li = b.Scan(kLineitem, v.Sel(0.3), kLineBytes,
                      {"l_shipdate", "1995..1996"});
      int o = b.Scan(kOrders, 1.0, kOrdBytes);
      int c = b.Scan(kCustomer, 1.0, kCustBytes);
      int j1 = b.Join(s, n1, v.Fac(0.08), {"s_nationkey"});
      int j2 = b.Join(li, j1, v.Fac(0.08), {"l_suppkey"}, 0.15);
      int j3 = b.Join(j2, o, v.Fac(1.0), {"l_orderkey"});
      int j4 = b.Join(c, n2, v.Fac(0.08), {"c_nationkey"});
      int j5 = b.Join(j3, j4, v.Fac(0.08), {"o_custkey", "nation_pair"});
      int agg = b.Aggregate(j5, v.Fac(1e-6), true,
                            {"supp_nation", "cust_nation", "l_year", "sum"});
      b.Sort(agg, {"supp_nation", "cust_nation", "l_year"});
      break;
    }
    case 8: {  // National market share: 8 scans, 7 joins.
      int p = b.Scan(kPart, v.Sel(0.0013), kPartBytes,
                     {"p_type", "ECONOMY ANODIZED STEEL"});
      int li = b.Scan(kLineitem, 1.0, kLineBytes);
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int o = b.Scan(kOrders, v.Sel(0.3), kOrdBytes,
                     {"o_orderdate", "1995..1996"});
      int c = b.Scan(kCustomer, 1.0, kCustBytes);
      int n1 = b.Scan(kNation, 1.0, kNatBytes);
      int n2 = b.Scan(kNation, 1.0, kNatBytes);
      int r = b.Scan(kRegion, v.Sel(0.2), kRegBytes, {"r_name", "AMERICA"});
      int j1 = b.Join(li, p, v.Fac(0.0013), {"l_partkey"}, 0.3);
      int j2 = b.Join(j1, s, v.Fac(1.0), {"l_suppkey"});
      int j3 = b.Join(j2, o, v.Fac(0.3), {"l_orderkey"});
      int j4 = b.Join(j3, c, v.Fac(1.0), {"o_custkey"});
      int j5 = b.Join(n1, r, v.Fac(0.2), {"n_regionkey"});
      int j6 = b.Join(j4, j5, v.Fac(0.2), {"c_nationkey"});
      int j7 = b.Join(j6, n2, v.Fac(1.0), {"s_nationkey"});
      int agg = b.Aggregate(j7, v.Fac(1e-5), true,
                            {"o_year", "sum", "case", "nation"});
      b.Sort(agg, {"o_year"});
      break;
    }
    case 9: {  // Product type profit: 6 scans, 5 joins, 12 subQs (Fig. 3).
      int p = b.Scan(kPart, v.Sel(0.054), kPartBytes,
                     {"p_name", "like", "green"});
      int li = b.Scan(kLineitem, 1.0, kLineBytes);
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int ps = b.Scan(kPartSupp, 1.0, kPsBytes);
      int o = b.Scan(kOrders, 1.0, kOrdBytes);
      int n = b.Scan(kNation, 1.0, kNatBytes);
      int j1 = b.Join(li, p, v.Fac(0.054), {"l_partkey"}, 0.35);
      int j2 = b.Join(j1, s, v.Fac(1.0), {"l_suppkey"});
      int j3 = b.Join(j2, ps, v.Fac(1.0), {"ps_partkey", "ps_suppkey"}, 0.2);
      int j4 = b.Join(j3, o, v.Fac(1.0), {"l_orderkey"});
      int j5 = b.Join(j4, n, v.Fac(1.0), {"s_nationkey"});
      int agg = b.Aggregate(j5, v.Fac(1e-5), true,
                            {"nation", "o_year", "sum", "amount"});
      b.Sort(agg, {"nation", "o_year", "desc"});
      break;
    }
    case 10: {  // Returned item reporting.
      int c = b.Scan(kCustomer, 1.0, kCustBytes);
      int o = b.Scan(kOrders, v.Sel(0.038), kOrdBytes,
                     {"o_orderdate", "1993-10", "quarter"});
      int li = b.Scan(kLineitem, v.Sel(0.25), kLineBytes,
                      {"l_returnflag", "R"});
      int n = b.Scan(kNation, 1.0, kNatBytes);
      int j1 = b.Join(c, o, v.Fac(0.038), {"c_custkey"});
      int j2 = b.Join(j1, li, v.Fac(0.25), {"l_orderkey"});
      int j3 = b.Join(j2, n, v.Fac(1.0), {"c_nationkey"});
      int agg = b.Aggregate(j3, v.Fac(0.3), true,
                            {"c_custkey", "sum", "revenue"});
      int srt = b.Sort(agg, {"revenue", "desc"});
      b.Limit(srt, 20);
      break;
    }
    case 11: {  // Important stock identification.
      int ps = b.Scan(kPartSupp, 1.0, kPsBytes);
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int n = b.Scan(kNation, v.Sel(0.04), kNatBytes, {"n_name", "GERMANY"});
      int j1 = b.Join(s, n, v.Fac(0.04), {"s_nationkey"});
      int j2 = b.Join(ps, j1, v.Fac(0.04), {"ps_suppkey"});
      int agg = b.Aggregate(j2, v.Fac(0.3), true,
                            {"ps_partkey", "sum", "value"});
      b.Sort(agg, {"value", "desc"});
      break;
    }
    case 12: {  // Shipping modes and order priority.
      int o = b.Scan(kOrders, 1.0, kOrdBytes);
      int li = b.Scan(kLineitem, v.Sel(0.013), kLineBytes,
                      {"l_shipmode", "MAIL", "SHIP", "l_receiptdate"});
      int j = b.Join(o, li, v.Fac(0.013), {"l_orderkey"});
      int agg = b.Aggregate(j, v.Fac(1e-7), true,
                            {"l_shipmode", "count", "case"});
      b.Sort(agg, {"l_shipmode"});
      break;
    }
    case 13: {  // Customer distribution (left outer join).
      int c = b.Scan(kCustomer, 1.0, kCustBytes);
      int o = b.Scan(kOrders, v.Sel(0.98), kOrdBytes,
                     {"o_comment", "not like", "special requests"});
      int j = b.Join(c, o, v.Fac(1.0), {"left_outer", "c_custkey"});
      int a1 = b.Aggregate(j, v.Fac(0.1), true, {"c_custkey", "count"});
      int a2 = b.Aggregate(a1, v.Fac(0.001), true, {"c_count", "count"});
      b.Sort(a2, {"custdist", "desc"});
      break;
    }
    case 14: {  // Promotion effect.
      int li = b.Scan(kLineitem, v.Sel(0.0125), kLineBytes,
                      {"l_shipdate", "1995-09"});
      int p = b.Scan(kPart, 1.0, kPartBytes);
      int j = b.Join(li, p, v.Fac(1.0), {"l_partkey"});
      b.Aggregate(j, v.Fac(1e-9), true, {"sum", "promo", "case"});
      break;
    }
    case 15: {  // Top supplier (view with agg, then join).
      int li = b.Scan(kLineitem, v.Sel(0.0375), kLineBytes,
                      {"l_shipdate", "1996-Q1"});
      int rev = b.Aggregate(li, v.Fac(0.04), true,
                            {"l_suppkey", "sum", "total_revenue"});
      int mx = b.Aggregate(rev, v.Fac(1e-5), true, {"max", "total_revenue"});
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int j1 = b.Join(rev, mx, v.Fac(1e-5), {"total_revenue", "=max"});
      int j2 = b.Join(s, j1, v.Fac(1e-5), {"s_suppkey"});
      b.Sort(j2, {"s_suppkey"});
      break;
    }
    case 16: {  // Parts/supplier relationship (anti-join).
      int ps = b.Scan(kPartSupp, 1.0, kPsBytes);
      int p = b.Scan(kPart, v.Sel(0.1), kPartBytes,
                     {"p_brand", "<>", "Brand#45", "p_size", "in"});
      int s = b.Scan(kSupplier, v.Sel(0.0004), kSuppBytes,
                     {"s_comment", "like", "Complaints"});
      int j1 = b.Join(ps, p, v.Fac(0.1), {"ps_partkey"});
      int j2 = b.Join(j1, s, v.Fac(0.999), {"anti", "ps_suppkey"});
      int agg = b.Aggregate(j2, v.Fac(0.15), true,
                            {"p_brand", "p_type", "p_size", "count_distinct"});
      b.Sort(agg, {"supplier_cnt", "desc"});
      break;
    }
    case 17: {  // Small-quantity-order revenue (correlated avg).
      int li1 = b.Scan(kLineitem, 1.0, kLineBytes);
      int p = b.Scan(kPart, v.Sel(0.001), kPartBytes,
                     {"p_brand", "Brand#23", "p_container", "MED BOX"});
      int j1 = b.Join(li1, p, v.Fac(0.001), {"l_partkey"}, 0.4);
      int li2 = b.Scan(kLineitem, 1.0, kLineBytes);
      int avg = b.Aggregate(li2, v.Fac(0.033), true,
                            {"l_partkey", "avg", "l_quantity"});
      int j2 = b.Join(j1, avg, v.Fac(0.3), {"l_partkey", "qty<0.2avg"});
      b.Aggregate(j2, v.Fac(1e-9), true, {"sum", "avg_yearly"});
      break;
    }
    case 18: {  // Large volume customer (top-100 heavy hitter).
      int li1 = b.Scan(kLineitem, 1.0, kLineBytes);
      int big = b.Aggregate(li1, v.Fac(0.25), true,
                            {"l_orderkey", "sum", "l_quantity", ">300"});
      int f = b.Filter(big, v.Sel(0.0001), {"sum_qty", ">", "300"});
      int c = b.Scan(kCustomer, 1.0, kCustBytes);
      int o = b.Scan(kOrders, 1.0, kOrdBytes);
      int li2 = b.Scan(kLineitem, 1.0, kLineBytes);
      int j1 = b.Join(o, f, v.Fac(0.0001), {"o_orderkey", "semi"});
      int j2 = b.Join(c, j1, v.Fac(0.0001), {"c_custkey"});
      int j3 = b.Join(j2, li2, v.Fac(0.0004), {"l_orderkey"}, 0.3);
      int agg = b.Aggregate(j3, v.Fac(0.25), false,
                            {"c_name", "o_orderkey", "sum"});
      int srt = b.Sort(agg, {"o_totalprice", "desc"});
      b.Limit(srt, 100);
      break;
    }
    case 19: {  // Discounted revenue (disjunctive predicates).
      int li = b.Scan(kLineitem, v.Sel(0.002), kLineBytes,
                      {"l_shipmode", "AIR", "l_quantity", "ranges"});
      int p = b.Scan(kPart, v.Sel(0.002), kPartBytes,
                     {"p_brand", "p_container", "p_size", "or"});
      int j = b.Join(li, p, v.Fac(0.06), {"l_partkey", "disjunction"});
      b.Aggregate(j, v.Fac(1e-9), true, {"sum", "revenue"});
      break;
    }
    case 20: {  // Potential part promotion (nested semi-joins).
      int p = b.Scan(kPart, v.Sel(0.01), kPartBytes,
                     {"p_name", "like", "forest"});
      int ps = b.Scan(kPartSupp, 1.0, kPsBytes);
      int li = b.Scan(kLineitem, v.Sel(0.15), kLineBytes,
                      {"l_shipdate", "1994"});
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int n = b.Scan(kNation, v.Sel(0.04), kNatBytes, {"n_name", "CANADA"});
      int half = b.Aggregate(li, v.Fac(0.12), true,
                             {"l_partkey", "l_suppkey", "sum", "0.5"});
      int j1 = b.Join(ps, p, v.Fac(0.01), {"ps_partkey", "semi"});
      int j2 = b.Join(j1, half, v.Fac(0.005), {"availqty", ">"});
      int j3 = b.Join(s, n, v.Fac(0.04), {"s_nationkey"});
      int j4 = b.Join(j3, j2, v.Fac(0.002), {"s_suppkey", "semi"});
      b.Sort(j4, {"s_name"});
      break;
    }
    case 21: {  // Suppliers who kept orders waiting (3 lineitem passes).
      int s = b.Scan(kSupplier, 1.0, kSuppBytes);
      int li1 = b.Scan(kLineitem, v.Sel(0.5), kLineBytes,
                       {"l_receiptdate", ">", "l_commitdate"});
      int o = b.Scan(kOrders, v.Sel(0.49), kOrdBytes,
                     {"o_orderstatus", "F"});
      int n = b.Scan(kNation, v.Sel(0.04), kNatBytes,
                     {"n_name", "SAUDI ARABIA"});
      int li2 = b.Scan(kLineitem, 1.0, kLineBytes);
      int li3 = b.Scan(kLineitem, v.Sel(0.5), kLineBytes,
                       {"l_receiptdate", ">", "l_commitdate"});
      int j1 = b.Join(s, n, v.Fac(0.04), {"s_nationkey"});
      int j2 = b.Join(li1, j1, v.Fac(0.04), {"l_suppkey"}, 0.25);
      int j3 = b.Join(j2, o, v.Fac(0.49), {"l_orderkey"});
      int j4 = b.Join(j3, li2, v.Fac(0.8), {"exists", "other_supp"}, 0.25);
      int j5 = b.Join(j4, li3, v.Fac(0.4), {"not_exists", "late_supp"});
      int agg = b.Aggregate(j5, v.Fac(1e-4), true, {"s_name", "count"});
      int srt = b.Sort(agg, {"numwait", "desc"});
      b.Limit(srt, 100);
      break;
    }
    case 22: {  // Global sales opportunity (anti-join + global avg).
      int c1 = b.Scan(kCustomer, v.Sel(0.25), kCustBytes,
                      {"cntrycode", "in", "7 values"});
      int c2 = b.Scan(kCustomer, v.Sel(0.25), kCustBytes,
                      {"c_acctbal", ">", "0"});
      int avg = b.Aggregate(c2, v.Fac(1e-6), true, {"avg", "c_acctbal"});
      int o = b.Scan(kOrders, 1.0, kOrdBytes);
      int j1 = b.Join(c1, avg, v.Fac(0.4), {"c_acctbal", ">avg"});
      int j2 = b.Join(j1, o, v.Fac(0.3), {"anti", "o_custkey"});
      int agg = b.Aggregate(j2, v.Fac(1e-6), true,
                            {"cntrycode", "count", "sum"});
      b.Sort(agg, {"cntrycode"});
      break;
    }
    default:
      return Status::Internal("unreachable");
  }

  CboErrorModel err;
  err.seed = HashCombine(0x7C9ULL, HashCombine(qid, variant));
  return b.Build(catalog, err);
}

std::vector<Query> TpchBenchmark(const std::vector<TableStats>* catalog) {
  std::vector<Query> out;
  out.reserve(22);
  for (int q = 1; q <= 22; ++q) {
    auto r = MakeTpchQuery(q, catalog);
    if (r.ok()) out.push_back(std::move(*r));
  }
  return out;
}

}  // namespace sparkopt
