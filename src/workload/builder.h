#pragma once

#include <string>
#include <vector>

#include "plan/cardinality.h"
#include "plan/logical_plan.h"

/// \file builder.h
/// \brief Fluent construction of logical-plan skeletons, plus the Query
/// wrapper (plan + catalog + cardinality annotation) consumed by the
/// optimizer and the benchmarks.

namespace sparkopt {

/// \brief A benchmark query: an annotated plan over a catalog.
struct Query {
  std::string name;
  LogicalPlan plan;
  const std::vector<TableStats>* catalog = nullptr;
  uint64_t seed = 0;  ///< controls the CBO error draw and simulator noise

  int NumSubQueries() const {
    return static_cast<int>(plan.DecomposeSubQueries().size());
  }
};

/// \brief Incremental plan builder used by the TPC-H/TPC-DS generators.
///
/// Each method adds one operator and returns its id. Selectivities and
/// cardinality factors define the *true* cardinalities; the CBO error
/// model perturbs them into estimates at annotation time.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string name) { plan_.set_name(std::move(name)); }

  int Scan(int table_id, double selectivity, double row_bytes,
           std::vector<std::string> tokens = {});
  int Filter(int child, double selectivity,
             std::vector<std::string> tokens = {});
  int Project(int child, double row_bytes,
              std::vector<std::string> tokens = {});
  /// Join with output rows = factor x max(child rows). `skew` in [0,1]
  /// adds key skew to the shuffle feeding this join.
  int Join(int left, int right, double factor,
           std::vector<std::string> tokens = {}, double skew = 0.0,
           double row_bytes = 96.0);
  /// Aggregate with output rows = factor x input rows. `regroup` = true
  /// when grouping keys differ from the input partitioning (the aggregate
  /// then induces its own shuffle/stage).
  int Aggregate(int child, double factor, bool regroup,
                std::vector<std::string> tokens = {}, double row_bytes = 48.0);
  int Sort(int child, std::vector<std::string> tokens = {});
  int Limit(int child, double n);
  int Union(const std::vector<int>& children, double row_bytes = 96.0);

  /// Finalizes the DAG and annotates cardinalities.
  Result<Query> Build(const std::vector<TableStats>* catalog,
                      const CboErrorModel& error);

 private:
  LogicalPlan plan_;
};

}  // namespace sparkopt
