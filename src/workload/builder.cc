#include "workload/builder.h"

#include "analysis/invariants.h"

namespace sparkopt {

int PlanBuilder::Scan(int table_id, double selectivity, double row_bytes,
                      std::vector<std::string> tokens) {
  LogicalOperator op;
  op.type = OpType::kScan;
  op.table_id = table_id;
  op.selectivity = selectivity;
  op.out_row_bytes = row_bytes;
  op.predicate_tokens = std::move(tokens);
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Filter(int child, double selectivity,
                        std::vector<std::string> tokens) {
  LogicalOperator op;
  op.type = OpType::kFilter;
  op.children = {child};
  op.selectivity = selectivity;
  op.predicate_tokens = std::move(tokens);
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Project(int child, double row_bytes,
                         std::vector<std::string> tokens) {
  LogicalOperator op;
  op.type = OpType::kProject;
  op.children = {child};
  op.out_row_bytes = row_bytes;
  op.predicate_tokens = std::move(tokens);
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Join(int left, int right, double factor,
                      std::vector<std::string> tokens, double skew,
                      double row_bytes) {
  LogicalOperator op;
  op.type = OpType::kJoin;
  op.children = {left, right};
  op.cardinality_factor = factor;
  op.requires_shuffle = true;
  op.shuffle_skew = skew;
  op.out_row_bytes = row_bytes;
  op.predicate_tokens = std::move(tokens);
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Aggregate(int child, double factor, bool regroup,
                           std::vector<std::string> tokens,
                           double row_bytes) {
  LogicalOperator op;
  op.type = OpType::kAggregate;
  op.children = {child};
  op.cardinality_factor = factor;
  op.requires_shuffle = regroup;
  op.out_row_bytes = row_bytes;
  op.predicate_tokens = std::move(tokens);
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Sort(int child, std::vector<std::string> tokens) {
  LogicalOperator op;
  op.type = OpType::kSort;
  op.children = {child};
  op.predicate_tokens = std::move(tokens);
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Limit(int child, double n) {
  LogicalOperator op;
  op.type = OpType::kLimit;
  op.children = {child};
  op.cardinality_factor = n;
  return plan_.AddOperator(std::move(op));
}

int PlanBuilder::Union(const std::vector<int>& children, double row_bytes) {
  LogicalOperator op;
  op.type = OpType::kUnion;
  op.children = children;
  op.requires_shuffle = true;
  op.out_row_bytes = row_bytes;
  return plan_.AddOperator(std::move(op));
}

Result<Query> PlanBuilder::Build(const std::vector<TableStats>* catalog,
                                 const CboErrorModel& error) {
  SPARKOPT_RETURN_NOT_OK(plan_.Build());
  Query q;
  q.name = plan_.name();
  q.plan = std::move(plan_);
  q.catalog = catalog;
  q.seed = error.seed;
  SPARKOPT_RETURN_NOT_OK(AnnotateCardinalities(*catalog, error, &q.plan));
#ifdef SPARKOPT_VERIFY
  const auto subqs = q.plan.DecomposeSubQueries();
  SPARKOPT_VERIFY_LOGICAL(q.plan, catalog, &subqs, "PlanBuilder::Build");
#endif
  return q;
}

}  // namespace sparkopt
