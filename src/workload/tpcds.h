#pragma once

#include <vector>

#include "workload/builder.h"

/// \file tpcds.h
/// \brief TPC-DS-like structural workload.
///
/// The paper evaluates on the 102 TPC-DS queries (complex star/snowflake
/// joins over sales/returns facts, multi-channel unions, up to 47 subQs
/// per query). Without the official query set offline, we generate 102
/// skeletons from a seeded structural model whose family mix reproduces
/// the benchmark's shape statistics: star joins over one of three sales
/// channels, snowflake dimension chains, fact-to-fact joins with returns,
/// multi-channel unions, and year-over-year self-join reports.

namespace sparkopt {

/// Table ids in the TPC-DS catalog (indices into TpcdsCatalog()).
enum TpcdsTable {
  kDateDim = 0,
  kTimeDim,
  kItem,
  kCustomerDs,
  kCustomerAddress,
  kCustomerDemographics,
  kHouseholdDemographics,
  kStore,
  kWarehouse,
  kPromotion,
  kStoreSales,
  kCatalogSales,
  kWebSales,
  kStoreReturns,
  kCatalogReturns,
  kWebReturns,
  kInventory,
  kNumTpcdsTables
};

/// Base-table statistics at the given scale factor (default SF 100).
std::vector<TableStats> TpcdsCatalog(double scale_factor = 100.0);

/// \brief Builds TPC-DS-like query `qid` (1-102). `variant` perturbs
/// selectivities for training workloads (0 = canonical).
Result<Query> MakeTpcdsQuery(int qid, const std::vector<TableStats>* catalog,
                             uint64_t variant = 0);

/// All 102 canonical queries.
std::vector<Query> TpcdsBenchmark(const std::vector<TableStats>* catalog);

}  // namespace sparkopt
